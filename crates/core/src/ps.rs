//! PowerSave (PS): energy savings under a performance floor (paper §IV.B).
//!
//! Where demand-based switching only saves energy when the system is idle,
//! PS trades an *explicit, bounded* amount of performance for energy even at
//! full load. Every 10 ms it:
//!
//! 1. **monitors** retired IPC and DCU-miss-outstanding cycles — exactly the
//!    two programmable counters the Pentium M has;
//! 2. **estimates** IPC (and hence throughput) at every p-state via eq. 3;
//! 3. **controls**: picks the lowest-frequency p-state whose predicted
//!    throughput stays at or above `floor ×` the predicted peak throughput.
//!
//! Because p-states are discrete, the chosen state usually sits above the
//! floor — the next lower state would cross it (the paper makes the same
//! observation about its Figure 9 results).

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_models::perf_model::PerfModel;
use aapm_telemetry::metrics::{EventKind, Metrics};

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::limits::PerformanceFloor;

/// Tunables of the PS control loop (the analogue of
/// [`PmConfig`](crate::pm::PmConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsConfig {
    /// How many consecutive stale counter samples (missed PMC reads) PS
    /// tolerates by repeating its last fresh choice before it starts
    /// stepping toward the peak state as a fail-safe. "Hold for N" means
    /// *exactly N* stale intervals are absorbed: stale samples 1..=N hold,
    /// and stale sample N+1 takes the first step up.
    pub hold_samples: usize,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig { hold_samples: PowerSave::STALE_HOLD_SAMPLES }
    }
}

/// The PowerSave governor.
///
/// # Examples
///
/// ```
/// use aapm::limits::PerformanceFloor;
/// use aapm::ps::PowerSave;
/// use aapm_models::perf_model::{PerfModel, PerfModelParams};
///
/// let ps = PowerSave::new(
///     PerfModel::new(PerfModelParams::paper()),
///     PerformanceFloor::new(0.8)?,
/// );
/// assert_eq!(aapm::governor::Governor::name(&ps), "ps");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerSave {
    model: PerfModel,
    floor: PerformanceFloor,
    config: PsConfig,
    /// Choice made on the last fresh counter sample, held during outages.
    last_choice: Option<PStateId>,
    /// Consecutive stale counter samples seen.
    stale_streak: usize,
    /// IPC projected for the state chosen last interval, compared against
    /// the next fresh sample to measure eq. 3's projection error.
    predicted_ipc: Option<f64>,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl PowerSave {
    /// Default hold window: consecutive stale counter samples PS tolerates
    /// by holding its last projection before failing safe toward the peak
    /// state (protecting the performance floor when the workload may have
    /// shifted unseen). Configurable via [`PsConfig::hold_samples`].
    pub const STALE_HOLD_SAMPLES: usize = 50;

    /// Creates PS with the given projection model and floor, using the
    /// default hold window.
    pub fn new(model: PerfModel, floor: PerformanceFloor) -> Self {
        PowerSave::with_config(model, floor, PsConfig::default())
    }

    /// Creates PS with explicit control-loop tunables.
    pub fn with_config(model: PerfModel, floor: PerformanceFloor, config: PsConfig) -> Self {
        PowerSave {
            model,
            floor,
            config,
            last_choice: None,
            stale_streak: 0,
            predicted_ipc: None,
            metrics: Metrics::disabled(),
        }
    }

    /// The active performance floor.
    pub fn floor(&self) -> PerformanceFloor {
        self.floor
    }

    /// The control-loop tunables in use.
    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    /// The projection model in use.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// Predicted throughput at `target` relative to the predicted peak
    /// (highest p-state), from a sample observed at `ctx.current`.
    pub fn predicted_relative_performance(
        &self,
        ctx: &SampleContext<'_>,
        ipc: f64,
        dcu: f64,
        target: PStateId,
    ) -> Option<f64> {
        let from = ctx.table.get(ctx.current).ok()?.frequency();
        let to = ctx.table.get(target).ok()?.frequency();
        let peak = ctx.table.get(ctx.table.highest()).ok()?.frequency();
        let to_target = self.model.relative_performance(ipc, dcu, from, to);
        let to_peak = self.model.relative_performance(ipc, dcu, from, peak);
        if to_peak <= 0.0 {
            return None;
        }
        Some(to_target / to_peak)
    }
}

impl Governor for PowerSave {
    fn name(&self) -> &str {
        "ps"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsRetired, HardwareEvent::DcuMissOutstanding]
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        let now = ctx.counters.end;
        // Graceful degradation under missed PMC reads: hold the last fresh
        // choice for a bounded window of exactly `hold_samples` stale
        // intervals, then step back up toward the peak — PS's contract is a
        // performance floor, and running too fast is the safe failure
        // direction.
        if !ctx.counters.is_fresh() {
            self.stale_streak += 1;
            self.metrics.inc("ps.stale_intervals");
            if self.stale_streak == 1 {
                self.metrics.inc("ps.hold_entries");
                self.metrics.event(now, EventKind::HoldEntered { governor: "ps" });
            }
            // A stale interval invalidates the one-step-ahead projection.
            self.predicted_ipc = None;
            return match self.last_choice {
                Some(choice) if self.stale_streak <= self.config.hold_samples => choice,
                _ => {
                    self.metrics.inc("ps.failsafe_steps");
                    self.metrics.event(now, EventKind::FailSafeStep { governor: "ps" });
                    ctx.table
                        .next_higher(ctx.current)
                        .unwrap_or_else(|| ctx.table.highest())
                }
            };
        }
        if self.stale_streak > 0 {
            self.metrics.inc("ps.hold_exits");
            self.metrics.event(
                now,
                EventKind::HoldExited { governor: "ps", stale_intervals: self.stale_streak as u64 },
            );
            self.stale_streak = 0;
        }
        let ipc = ctx.counters.ipc().unwrap_or(0.0);
        let dcu = ctx.counters.dcu().unwrap_or(0.0);
        if let Some(predicted) = self.predicted_ipc.take() {
            self.metrics.observe("ps.projection_error_ipc", (ipc - predicted).abs());
        }
        // Scan from the lowest frequency up; take the first state whose
        // predicted throughput clears the floor. The peak state always
        // clears it (ratio 1.0), so the loop always returns.
        let mut chosen = ctx.table.highest();
        for (id, _) in ctx.table.iter() {
            if let Some(relative) = self.predicted_relative_performance(ctx, ipc, dcu, id) {
                if relative >= self.floor.fraction() {
                    chosen = id;
                    break;
                }
            }
        }
        self.last_choice = Some(chosen);
        if self.metrics.is_enabled() {
            // Floor slack: how far above the floor the discrete choice
            // lands (the Figure 9 "p-states are coarse" observation).
            if let Some(relative) = self.predicted_relative_performance(ctx, ipc, dcu, chosen) {
                self.metrics.observe("ps.floor_slack", relative - self.floor.fraction());
            }
            // One-step-ahead IPC projection for the chosen state (eq. 3):
            // performance ∝ IPC × f, so the predicted IPC rescales the
            // relative-performance projection by the frequency ratio.
            if let (Ok(from), Ok(to)) = (ctx.table.get(ctx.current), ctx.table.get(chosen)) {
                let rel = self.model.relative_performance(ipc, dcu, from.frequency(), to.frequency());
                let ratio = from.frequency().mhz() as f64 / to.frequency().mhz() as f64;
                self.predicted_ipc = Some(ipc * rel * ratio);
            }
        }
        chosen
    }

    fn command(&mut self, command: GovernorCommand) {
        if let GovernorCommand::SetPerformanceFloor(floor) = command {
            self.floor = floor;
        }
    }

    fn install_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_models::perf_model::PerfModelParams;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(ipc: f64, dcu: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![
                (HardwareEvent::InstructionsRetired, ipc * cycles, true),
                (HardwareEvent::DcuMissOutstanding, dcu * cycles, true),
            ],
        }
    }

    fn ps_with_floor(floor: f64) -> PowerSave {
        PowerSave::new(PerfModel::new(PerfModelParams::paper()), PerformanceFloor::new(floor).unwrap())
    }

    fn decide_at(ps: &mut PowerSave, table: &PStateTable, current: usize, ipc: f64, dcu: f64) -> PStateId {
        let s = sample(ipc, dcu);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(current), table, queue: None };
        ps.decide(&ctx)
    }

    #[test]
    fn core_bound_workload_respects_frequency_floor() {
        let table = PStateTable::pentium_m_755();
        // Core-bound: performance ∝ f, so floor 0.8 requires f ≥ 1600 MHz.
        let mut ps = ps_with_floor(0.8);
        let chosen = decide_at(&mut ps, &table, 7, 1.5, 0.1);
        let freq = table.get(chosen).unwrap().frequency().mhz();
        assert_eq!(freq, 1600, "1600/2000 = 0.8 exactly meets the floor");
    }

    #[test]
    fn memory_bound_workload_drops_much_lower() {
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        // Strongly memory-bound (DCU/IPC = 6): (f'/f)^0.19 ≥ 0.8 allows
        // f' ≥ 2000·0.8^(1/0.19) ≈ 616 MHz → PS picks 800 MHz.
        let chosen = decide_at(&mut ps, &table, 7, 0.3, 1.8);
        let freq = table.get(chosen).unwrap().frequency().mhz();
        assert_eq!(freq, 800, "memory-bound work tolerates deep slowdowns");
    }

    #[test]
    fn floor_one_keeps_max_frequency_for_core_bound() {
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(1.0);
        let chosen = decide_at(&mut ps, &table, 7, 1.5, 0.1);
        assert_eq!(chosen, table.highest());
    }

    #[test]
    fn lower_floor_never_chooses_higher_frequency() {
        let table = PStateTable::pentium_m_755();
        for (ipc, dcu) in [(1.5, 0.1), (0.3, 1.8), (0.6, 0.75)] {
            let mut last_freq = u32::MAX;
            for floor in [0.9, 0.7, 0.5, 0.3] {
                let mut ps = ps_with_floor(floor);
                let chosen = decide_at(&mut ps, &table, 7, ipc, dcu);
                let freq = table.get(chosen).unwrap().frequency().mhz();
                assert!(freq <= last_freq, "floor {floor}: {freq} > {last_freq}");
                last_freq = freq;
            }
        }
    }

    #[test]
    fn decision_is_stable_across_current_pstate() {
        // From any current state, the projected-to-peak normalization makes
        // the choice depend only on the workload, not where we observe it —
        // for core-bound work where IPC is truly state-independent.
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        let from_top = decide_at(&mut ps, &table, 7, 1.5, 0.1);
        let from_low = decide_at(&mut ps, &table, 1, 1.5, 0.1);
        assert_eq!(from_top, from_low);
    }

    #[test]
    fn zero_ipc_sample_chooses_lowest_state() {
        // A fully-stalled interval can sacrifice frequency for free.
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        let chosen = decide_at(&mut ps, &table, 7, 0.0, 2.0);
        assert_eq!(chosen, table.lowest());
    }

    #[test]
    fn floor_change_takes_effect() {
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        let before = decide_at(&mut ps, &table, 7, 1.5, 0.1);
        ps.command(GovernorCommand::SetPerformanceFloor(PerformanceFloor::new(0.4).unwrap()));
        let after = decide_at(&mut ps, &table, 7, 1.5, 0.1);
        assert!(after < before);
    }

    fn stale_sample() -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![
                (HardwareEvent::InstructionsRetired, 0.0, false),
                (HardwareEvent::DcuMissOutstanding, 0.0, false),
            ],
        }
    }

    #[test]
    fn stale_counters_hold_then_step_toward_peak() {
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        // Establish a choice from fresh memory-bound telemetry (800 MHz).
        let held = decide_at(&mut ps, &table, 7, 0.3, 1.8);
        assert_eq!(table.get(held).unwrap().frequency().mhz(), 800);
        let s = stale_sample();
        // Within the hold window the previous choice is repeated.
        for i in 0..PowerSave::STALE_HOLD_SAMPLES {
            let ctx = SampleContext { counters: &s, power: None, temperature: None, current: held, table: &table, queue: None };
            assert_eq!(ps.decide(&ctx), held, "stale sample {i}");
        }
        // Past the window PS fails toward the performance floor's safe
        // side: higher frequency, one state per sample.
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: held, table: &table, queue: None };
        let stepped = ps.decide(&ctx);
        assert_eq!(stepped, table.next_higher(held).unwrap());
    }

    /// Boundary of the hold window: with `hold_samples = N`, exactly N
    /// stale intervals repeat the held choice and the (N+1)-th steps up.
    #[test]
    fn hold_window_boundary_is_exactly_n_stale_intervals() {
        let table = PStateTable::pentium_m_755();
        let n = 4;
        let mut ps = PowerSave::with_config(
            PerfModel::new(PerfModelParams::paper()),
            PerformanceFloor::new(0.8).unwrap(),
            PsConfig { hold_samples: n },
        );
        let held = decide_at(&mut ps, &table, 7, 0.3, 1.8);
        let s = stale_sample();
        for i in 1..=n {
            let ctx = SampleContext { counters: &s, power: None, temperature: None, current: held, table: &table, queue: None };
            assert_eq!(ps.decide(&ctx), held, "stale sample {i} holds");
        }
        // Stale sample N+1 is the first fail-safe step toward the peak.
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: held, table: &table, queue: None };
        assert_eq!(ps.decide(&ctx), table.next_higher(held).unwrap(), "sample N+1 steps up");
    }

    /// Hold-window entry/exit and fail-safe steps are counted when a
    /// metrics registry is installed.
    #[test]
    fn hold_window_metrics_count_the_boundary() {
        let table = PStateTable::pentium_m_755();
        let n = 4;
        let mut ps = PowerSave::with_config(
            PerfModel::new(PerfModelParams::paper()),
            PerformanceFloor::new(0.8).unwrap(),
            PsConfig { hold_samples: n },
        );
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut ps, metrics.clone());
        let held = decide_at(&mut ps, &table, 7, 0.3, 1.8);
        let s = stale_sample();
        for _ in 0..n + 3 {
            let ctx = SampleContext { counters: &s, power: None, temperature: None, current: held, table: &table, queue: None };
            ps.decide(&ctx);
        }
        decide_at(&mut ps, &table, 7, 0.3, 1.8);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counter("ps.hold_entries"), 1);
        assert_eq!(snapshot.counter("ps.hold_exits"), 1);
        assert_eq!(snapshot.counter("ps.stale_intervals"), n as u64 + 3);
        assert_eq!(snapshot.counter("ps.failsafe_steps"), 3);
        assert!(snapshot.histogram("ps.floor_slack").is_some());
    }

    #[test]
    fn stale_counters_with_no_history_fail_toward_peak() {
        let table = PStateTable::pentium_m_755();
        let mut ps = ps_with_floor(0.8);
        let s = stale_sample();
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(2), table: &table, queue: None };
        assert_eq!(ps.decide(&ctx), PStateId::new(3), "no history: step up immediately");
    }

    #[test]
    fn alternate_exponent_is_more_conservative() {
        let table = PStateTable::pentium_m_755();
        // In-between workload: memory-classified but not extreme.
        let (ipc, dcu) = (0.45, 0.7);
        let mut primary = ps_with_floor(0.8);
        let mut alternate = PowerSave::new(
            PerfModel::new(PerfModelParams::paper_alternate()),
            PerformanceFloor::new(0.8).unwrap(),
        );
        let f_primary = table
            .get(decide_at(&mut primary, &table, 7, ipc, dcu))
            .unwrap()
            .frequency()
            .mhz();
        let f_alternate = table
            .get(decide_at(&mut alternate, &table, 7, ipc, dcu))
            .unwrap()
            .frequency()
            .mhz();
        assert!(
            f_alternate >= f_primary,
            "exponent 0.59 predicts more loss → keeps frequency ≥ 0.81's choice"
        );
    }
}
