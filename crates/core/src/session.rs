//! Measurement sessions: several workloads, one continuous capture.
//!
//! The paper's rig ran benchmarks back-to-back while the DAQ captured one
//! continuous power stream, with a GPIO edge at each benchmark's start and
//! end to slice the record afterwards (§III.B). [`run_session`] reproduces
//! that structure: a sequence of programs executes under a single governor
//! on one machine timeline, a [`SyncChannel`] records the boundaries, and
//! per-workload reports are sliced out of the shared trace.
//!
//! Compared with a single [`crate::runtime::Session`] (one fresh machine
//! per workload), a measurement session preserves cross-benchmark state:
//! the governor's windows and streaks, the die temperature, and the
//! p-state all carry over — exactly what a long bench run on real hardware
//! does. Internally each workload *is* a [`crate::runtime::Session`],
//! advanced with [`Session::step`] so boundary state can be read off
//! between workloads.

use aapm_platform::config::MachineConfig;
use aapm_platform::error::Result;
use aapm_platform::program::PhaseProgram;
use aapm_platform::units::{Joules, Seconds};
use aapm_telemetry::gpio::SyncChannel;
use aapm_telemetry::trace::RunTrace;

use crate::governor::Governor;
use crate::report::RunReport;
use crate::runtime::{Session, SimulationConfig};

/// The result of a measurement session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Per-workload reports, in execution order, sliced from the session
    /// trace.
    pub runs: Vec<RunReport>,
    /// The full uninterrupted trace (the paper's Figure 1 is this record
    /// for the whole suite).
    pub trace: RunTrace,
    /// Benchmark boundary markers.
    pub markers: SyncChannel,
}

impl SessionReport {
    /// Total session time.
    pub fn total_time(&self) -> Seconds {
        self.runs.iter().map(|r| r.execution_time).sum()
    }

    /// Total measured energy across the session.
    pub fn total_energy(&self) -> Joules {
        self.runs.iter().map(|r| r.measured_energy).sum()
    }

    /// The report for one workload, by name.
    pub fn run(&self, workload: &str) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.workload == workload)
    }
}

/// Runs `programs` back-to-back under one governor on one machine timeline.
///
/// Each program runs on a fresh machine program counter but the governor
/// and p-state persist across boundaries (machines are re-created per
/// program because a machine owns its program; the outgoing p-state is
/// carried into the next machine, and elapsed session time keeps
/// accumulating in the trace). Per-workload telemetry seeds are derived
/// from `config.seed` plus the workload's index, so a session is
/// reproducible workload by workload.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_session(
    governor: &mut dyn Governor,
    machine_config: &MachineConfig,
    programs: &[PhaseProgram],
    config: SimulationConfig,
) -> Result<SessionReport> {
    let table = machine_config.pstates().clone();
    let mut session_trace = RunTrace::new(config.sample_interval);
    let mut markers = SyncChannel::new();
    let mut runs = Vec::with_capacity(programs.len());
    let mut session_offset = Seconds::ZERO;
    let mut carried_pstate = machine_config.initial_pstate();

    for (index, program) in programs.iter().enumerate() {
        let workload = program.name().to_owned();
        let per_run_config = {
            let mut b = MachineConfig::builder();
            b.pstates(table.clone())
                .timings(*machine_config.timings())
                .dvfs(*machine_config.dvfs())
                .thermal(*machine_config.thermal())
                .initial_pstate(carried_pstate)
                .seed(machine_config.seed().wrapping_add(index as u64))
                .execution_variation(machine_config.execution_variation());
            b.build()?
        };
        let per_run_sim = SimulationConfig {
            seed: config.seed.wrapping_add(index as u64),
            ..config
        };
        let mut run =
            Session::builder(per_run_config, program.clone()).config(per_run_sim).governor(governor).build()?;

        markers.rise(session_offset, workload.clone());
        let mut copied = 0usize;
        loop {
            let status = run.step()?;
            // Mirror freshly traced samples into the continuous session
            // trace, shifted to absolute session time.
            let records = run.trace().records();
            while copied < records.len() {
                let mut record = records[copied];
                record.time = session_offset + record.time;
                session_trace.push(record);
                copied += 1;
            }
            if status.is_finished() {
                break;
            }
        }
        let elapsed = run.elapsed();
        carried_pstate = run.pstate();
        let (report, _faults) = run.finish();
        markers.fall(session_offset + report.execution_time, workload.clone());
        session_offset += elapsed;
        runs.push(report);
    }

    Ok(SessionReport { runs, trace: session_trace, markers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Unconstrained;
    use crate::limits::PowerLimit;
    use crate::pm::PerformanceMaximizer;
    use aapm_models::power_model::PowerModel;
    use aapm_platform::phase::PhaseDescriptor;

    fn program(name: &str, instructions: u64) -> PhaseProgram {
        PhaseProgram::from_phase(
            PhaseDescriptor::builder(name)
                .instructions(instructions)
                .core_cpi(0.8)
                .build()
                .unwrap(),
        )
    }

    fn config() -> MachineConfig {
        MachineConfig::pentium_m_755(5)
    }

    #[test]
    fn session_slices_per_workload_reports() {
        let programs =
            vec![program("alpha", 400_000_000), program("beta", 200_000_000)];
        let report = run_session(
            &mut Unconstrained::new(),
            &config(),
            &programs,
            SimulationConfig::default(),
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2);
        assert!(report.run("alpha").is_some());
        assert!(report.run("beta").is_some());
        assert!(report.run("alpha").unwrap().completed);
        // alpha (2× the instructions) takes about twice as long.
        let ratio = report.run("alpha").unwrap().execution_time
            / report.run("beta").unwrap().execution_time;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn session_trace_is_continuous_and_markers_align() {
        let programs = vec![program("a", 300_000_000), program("b", 300_000_000)];
        let report = run_session(
            &mut Unconstrained::new(),
            &config(),
            &programs,
            SimulationConfig::default(),
        )
        .unwrap();
        // Session trace holds both runs' samples with increasing time.
        let times: Vec<f64> =
            report.trace.records().iter().map(|r| r.time.seconds()).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]), "session time is monotone");
        assert_eq!(
            report.trace.len(),
            report.runs.iter().map(|r| r.trace.len()).sum::<usize>()
        );
        // Markers bracket each workload.
        let (start_a, end_a) = report.markers.region("a").unwrap();
        let (start_b, _) = report.markers.region("b").unwrap();
        assert_eq!(start_a, Seconds::ZERO);
        assert!(end_a <= start_b, "b starts after a ends");
    }

    #[test]
    fn governor_state_carries_across_boundaries() {
        // A hot program forces PM down; the p-state carried into the next
        // program starts low and needs the raise window to recover.
        let hot = PhaseProgram::from_phase(
            PhaseDescriptor::builder("hot")
                .instructions(600_000_000)
                .core_cpi(0.45)
                .decode_ratio(1.5)
                .activity(1.3)
                .build()
                .unwrap(),
        );
        let cool = program("cool", 100_000_000);
        let mut pm =
            PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(12.5).unwrap());
        let report = run_session(
            &mut pm,
            &config(),
            &[hot, cool],
            SimulationConfig::default(),
        )
        .unwrap();
        let cool_run = report.run("cool").unwrap();
        let first = cool_run.trace.records().first().unwrap();
        assert!(
            first.pstate < config().pstates().highest(),
            "cool run inherits the throttled p-state, got {}",
            first.pstate
        );
    }

    #[test]
    fn totals_sum_over_runs() {
        let programs = vec![program("x", 200_000_000), program("y", 200_000_000)];
        let report = run_session(
            &mut Unconstrained::new(),
            &config(),
            &programs,
            SimulationConfig::default(),
        )
        .unwrap();
        let time_sum: f64 = report.runs.iter().map(|r| r.execution_time.seconds()).sum();
        assert!((report.total_time().seconds() - time_sum).abs() < 1e-12);
        assert!(report.total_energy().joules() > 0.0);
    }
}
