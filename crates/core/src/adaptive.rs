//! Online model adaptation: a governor layer that refits the power model
//! from the live counter stream (ROADMAP item 3).
//!
//! The paper trains its Table II coefficients once, offline, on MS-Loops;
//! the model-error experiment shows exactly where that breaks (art/mcf
//! miss-overlap inflates true power ~2 W above the DPC line, so PM
//! violates its cap while believing it has headroom). This layer closes
//! the loop: every interval with a fresh DPC *and* a measured power sample
//! feeds a per-p-state recursive-least-squares estimator
//! ([`aapm_models::online`]), and after each window of accepted samples
//! the refit coefficients are pushed into the wrapped governor via
//! [`GovernorCommand::SetPowerCoefficients`].
//!
//! Fallback rules (DESIGN.md §13) — the seed model is always the safe
//! harbour:
//!
//! * a **degenerate window** (DPC spread below resolution — nothing to
//!   identify a slope from — or a non-finite/negative-slope fit) discards
//!   the estimator, restores the offline seed for that p-state, and
//!   reseeds;
//! * a **telemetry outage** (a full window of consecutive intervals
//!   without a usable observation: stale counters, missing DPC, or no
//!   power sample — e.g. a PMC outage or meter blackout) restores the
//!   seed model for *every* p-state and reseeds all estimators, so the
//!   layer re-learns from scratch when telemetry returns instead of
//!   trusting a fit that ended mid-regime.
//!
//! The layer never overrides a decision — adaptation acts only through
//! the command channel, so `adaptive(pm)` under a watchdog or thermal
//! guard composes exactly like plain PM. Metrics: `adapt.refit_count`,
//! `adapt.coeff_drift_w` (refit vs seed, in watts at the operating DPC),
//! `adapt.model_error_w` (pre-update prediction error per sample),
//! `adapt.degenerate_windows`, `adapt.fallbacks`.

use std::cmp::Ordering;

use aapm_models::online::OnlineModel;
use aapm_models::power_model::PowerModel;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_telemetry::metrics::{EventKind, Metrics};

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::layer::GovernorLayer;

/// Covariance gain for freshly seeded estimators: moderate confidence in
/// the offline fit — early contradictory samples move the fit, but no
/// single sample can fling it.
const SEED_GAIN: f64 = 10.0;

/// Minimum DPC spread a window must exhibit, relative to its magnitude,
/// before a slope refit is identifiable. Below this the window is
/// degenerate (a constant-DPC phase tells us one point on the line, not
/// the line).
const MIN_RELATIVE_DPC_SPREAD: f64 = 1e-3;

/// Tunables of the adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// RLS forgetting factor λ ∈ (0, 1]: 1 = infinite memory, smaller =
    /// faster tracking of regime changes.
    pub forgetting: f64,
    /// Accepted samples per p-state between refit pushes; also the
    /// consecutive-unusable-interval count that declares a telemetry
    /// outage and restores the seed model everywhere.
    pub window: usize,
    /// Counter basis: `false` = the paper's `[DPC, 1]`, `true` = the
    /// Mazzola-style `[DPC, DCU, 1]` (collapsed back to two coefficients
    /// around the running mean DCU before pushing).
    pub multi_counter: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { forgetting: 0.98, window: 50, multi_counter: false }
    }
}

impl AdaptiveConfig {
    /// Validates the tunables.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] for a forgetting factor
    /// outside (0, 1] or a zero window.
    pub fn validate(&self) -> Result<()> {
        if !(self.forgetting > 0.0 && self.forgetting <= 1.0) {
            return Err(PlatformError::InvalidConfig {
                parameter: "forgetting",
                reason: format!("forgetting factor must be in (0, 1], got {}", self.forgetting),
            });
        }
        if self.window == 0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "window",
                reason: "refit window must be at least one sample".into(),
            });
        }
        Ok(())
    }
}

/// Per-p-state adaptation state: the estimator plus this window's
/// bookkeeping.
#[derive(Debug, Clone)]
struct StateFit {
    estimator: OnlineModel,
    /// Accepted samples in the current window.
    accepted: usize,
    /// DPC range seen in the current window (degeneracy check).
    dpc_min: f64,
    dpc_max: f64,
    /// Whether the live model for this state differs from the seed.
    refit: bool,
}

/// A governor layer that refits the wrapped governor's power model online.
///
/// # Examples
///
/// ```
/// use aapm::adaptive::Adaptive;
/// use aapm::limits::PowerLimit;
/// use aapm::pm::PerformanceMaximizer;
/// use aapm_models::power_model::PowerModel;
///
/// let model = PowerModel::paper_table_ii();
/// let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5)?);
/// let adaptive = Adaptive::new(pm, model);
/// assert_eq!(aapm::governor::Governor::name(&adaptive), "adaptive<pm>");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adaptive<G> {
    inner: G,
    config: AdaptiveConfig,
    /// The offline fit: the fallback whenever adaptation cannot be
    /// trusted, and the drift baseline.
    seed: PowerModel,
    /// The layer's copy of what the inner governor is currently running
    /// (seed + pushed refits) — used for pre-update error scoring.
    live: PowerModel,
    fits: Vec<StateFit>,
    /// Consecutive intervals without a usable observation.
    unusable_streak: usize,
    name: String,
    /// Observability handle (disabled unless the runtime installs one).
    metrics: Metrics,
}

impl<G: Governor> Adaptive<G> {
    /// Wraps `inner` with the default tunables, seeded from `seed` (the
    /// offline fit the inner governor was built with).
    pub fn new(inner: G, seed: PowerModel) -> Self {
        Adaptive::with_config(inner, seed, AdaptiveConfig::default())
            .expect("default adaptive config is valid")
    }

    /// Wraps `inner` with explicit tunables.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] for invalid tunables
    /// (see [`AdaptiveConfig::validate`]).
    pub fn with_config(inner: G, seed: PowerModel, config: AdaptiveConfig) -> Result<Self> {
        config.validate()?;
        let name = format!("adaptive<{}>", inner.name());
        let fits = seed
            .iter()
            .map(|(_, c)| StateFit {
                estimator: OnlineModel::seeded(*c, config.multi_counter, config.forgetting, SEED_GAIN),
                accepted: 0,
                dpc_min: f64::INFINITY,
                dpc_max: f64::NEG_INFINITY,
                refit: false,
            })
            .collect();
        Ok(Adaptive {
            inner,
            config,
            live: seed.clone(),
            seed,
            fits,
            unusable_streak: 0,
            name,
            metrics: Metrics::disabled(),
        })
    }

    /// The adaptation tunables in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The layer's view of the model currently installed in the inner
    /// governor (seed plus accumulated refits).
    pub fn live_model(&self) -> &PowerModel {
        &self.live
    }

    /// Whether any p-state currently runs refit (non-seed) coefficients.
    pub fn is_refit(&self) -> bool {
        self.fits.iter().any(|f| f.refit)
    }

    /// Reseeds one p-state's estimator and clears its window bookkeeping.
    fn reseed_state(&mut self, index: usize) {
        let seed = self.seed.iter().nth(index).map(|(_, c)| *c).expect("index in range");
        let fit = &mut self.fits[index];
        fit.estimator =
            OnlineModel::seeded(seed, self.config.multi_counter, self.config.forgetting, SEED_GAIN);
        fit.accepted = 0;
        fit.dpc_min = f64::INFINITY;
        fit.dpc_max = f64::NEG_INFINITY;
    }

    /// Restores the seed coefficients for one p-state in both the layer's
    /// live copy and the inner governor.
    fn restore_seed(&mut self, index: usize) {
        if !self.fits[index].refit {
            return;
        }
        let id = PStateId::new(index);
        let seed = *self.seed.coefficients(id).expect("index in range");
        let _ = self.live.set_coefficients(id, seed);
        self.inner.command(GovernorCommand::SetPowerCoefficients(id, seed));
        self.fits[index].refit = false;
    }

    /// Full fallback: restore the seed model everywhere and reseed every
    /// estimator (telemetry outage path).
    fn fall_back_to_seed(&mut self, now: aapm_platform::units::Seconds) {
        self.metrics.inc("adapt.fallbacks");
        self.metrics.event(now, EventKind::ModelReseeded { reason: "telemetry_outage" });
        for index in 0..self.fits.len() {
            self.restore_seed(index);
            self.reseed_state(index);
        }
    }

    /// Whether this interval carries a usable observation, and the
    /// observation itself: fresh counters with a DPC rate, plus a
    /// finite measured power.
    fn observation(ctx: &SampleContext<'_>) -> Option<(f64, Option<f64>, f64)> {
        if !ctx.counters.is_fresh() {
            return None;
        }
        let dpc = ctx.counters.dpc()?;
        let watts = ctx.power?.power.watts();
        if !dpc.is_finite() || !watts.is_finite() {
            return None;
        }
        Some((dpc, ctx.counters.dcu(), watts))
    }

    /// End-of-window refit attempt for the state the interval ran at.
    fn try_refit(&mut self, index: usize, ctx: &SampleContext<'_>) {
        let now = ctx.counters.end;
        let id = PStateId::new(index);
        let fit = &self.fits[index];
        let spread = fit.dpc_max - fit.dpc_min;
        let scale = fit.dpc_max.abs().max(1.0);
        // NaN spread (an impossible window) counts as degenerate too.
        let degenerate_window =
            spread.partial_cmp(&(MIN_RELATIVE_DPC_SPREAD * scale)) != Some(Ordering::Greater);
        let coeffs = fit.estimator.coefficients();
        // A negative slope says power falls as activity rises — that is a
        // fit gone wrong (faulted meter, regime boundary), not physics.
        let degenerate_fit = !matches!(coeffs, Some(c) if c.alpha >= 0.0);
        if degenerate_window || degenerate_fit {
            self.metrics.inc("adapt.degenerate_windows");
            self.metrics.event(now, EventKind::ModelReseeded { reason: "degenerate_window" });
            self.restore_seed(index);
            self.reseed_state(index);
            return;
        }
        let coeffs = coeffs.expect("checked above");
        let seed = *self.seed.coefficients(id).expect("index in range");
        // Drift vs the offline fit, in watts at the window's operating
        // point (the DPC where the refit actually matters).
        let operating_dpc = 0.5 * (self.fits[index].dpc_min + self.fits[index].dpc_max);
        let drift = ((coeffs.alpha - seed.alpha) * operating_dpc + (coeffs.beta - seed.beta)).abs();
        if self.live.set_coefficients(id, coeffs).is_ok() {
            self.inner.command(GovernorCommand::SetPowerCoefficients(id, coeffs));
            self.fits[index].refit = true;
            self.metrics.inc("adapt.refit_count");
            self.metrics.observe("adapt.coeff_drift_w", drift);
            self.metrics.event(now, EventKind::ModelRefit { pstate: index });
        }
        let fit = &mut self.fits[index];
        fit.accepted = 0;
        fit.dpc_min = f64::INFINITY;
        fit.dpc_max = f64::NEG_INFINITY;
    }
}

impl<G: Governor> GovernorLayer for Adaptive<G> {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn inner_governor(&self) -> &dyn Governor {
        &self.inner
    }

    fn inner_governor_mut(&mut self) -> &mut dyn Governor {
        &mut self.inner
    }

    /// The inner governor's events plus what the estimator needs, deduped
    /// so wrapping never duplicates a slot request (a duplicate would
    /// push the PMC driver into multiplexing for nothing).
    fn layer_events(&self) -> Vec<HardwareEvent> {
        let mut events = self.inner.events();
        let mut need = vec![HardwareEvent::InstructionsDecoded];
        if self.config.multi_counter {
            need.push(HardwareEvent::DcuMissOutstanding);
        }
        for event in need {
            if !events.contains(&event) {
                events.push(event);
            }
        }
        events
    }

    fn layer_decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        match Adaptive::<G>::observation(ctx) {
            Some((dpc, dcu, watts)) => {
                self.unusable_streak = 0;
                let index = ctx.current.index();
                if index < self.fits.len() {
                    // Score the live model *before* updating it: honest
                    // one-step-ahead error.
                    if let Ok(predicted) = self.live.estimate(ctx.current, dpc) {
                        self.metrics
                            .observe("adapt.model_error_w", (watts - predicted.watts()).abs());
                    }
                    let window = self.config.window;
                    let fit = &mut self.fits[index];
                    if fit.estimator.observe(dpc, dcu, watts) {
                        fit.accepted += 1;
                        fit.dpc_min = fit.dpc_min.min(dpc);
                        fit.dpc_max = fit.dpc_max.max(dpc);
                        if fit.accepted >= window {
                            self.try_refit(index, ctx);
                        }
                    }
                }
            }
            None => {
                self.unusable_streak += 1;
                // Trigger once per outage, exactly at the threshold; the
                // streak keeps counting so recovery needs fresh data.
                if self.unusable_streak == self.config.window {
                    self.fall_back_to_seed(ctx.counters.end);
                }
            }
        }
        // Adaptation acts only through the command channel; the decision
        // is always the inner governor's.
        self.inner.decide(ctx)
    }

    fn layer_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::pm::PerformanceMaximizer;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::{Seconds, Watts};
    use aapm_telemetry::daq::PowerSample;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(dpc: f64, fresh: bool) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, fresh)],
        }
    }

    fn power(watts: f64) -> PowerSample {
        PowerSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            power: Watts::new(watts),
            true_power: Watts::new(watts),
        }
    }

    fn adaptive_pm(limit: f64, config: AdaptiveConfig) -> Adaptive<PerformanceMaximizer> {
        let model = PowerModel::paper_table_ii();
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(limit).unwrap());
        Adaptive::with_config(pm, model, config).unwrap()
    }

    fn drive(
        layer: &mut Adaptive<PerformanceMaximizer>,
        table: &PStateTable,
        current: usize,
        dpc: f64,
        watts: Option<f64>,
    ) -> PStateId {
        let s = sample(dpc, true);
        let p = watts.map(power);
        let ctx = SampleContext {
            counters: &s,
            power: p.as_ref(),
            temperature: None,
            current: PStateId::new(current),
            table,
            queue: None,
        };
        layer.decide(&ctx)
    }

    #[test]
    fn tracks_a_hotter_regime_and_refits() {
        let table = PStateTable::pentium_m_755();
        let config = AdaptiveConfig { window: 30, ..AdaptiveConfig::default() };
        let mut layer = adaptive_pm(30.0, config);
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut layer, metrics.clone());
        // True power runs 2 W above Table II at P7 (the art/mcf
        // signature); DPC varies so the window is identifiable.
        for i in 0..120 {
            let dpc = 0.8 + 0.01 * (i % 40) as f64;
            let truth = 2.93 * dpc + 12.11 + 2.0;
            drive(&mut layer, &table, 7, dpc, Some(truth));
        }
        assert!(layer.is_refit(), "a hotter regime must trigger a refit");
        let live = layer.live_model().coefficients(PStateId::new(7)).unwrap();
        let at_dpc = live.alpha * 1.0 + live.beta;
        assert!(
            (at_dpc - (2.93 + 12.11 + 2.0)).abs() < 0.5,
            "live model should track the +2 W regime, got {at_dpc}"
        );
        let snapshot = metrics.snapshot();
        assert!(snapshot.counter("adapt.refit_count") >= 1);
        assert!(snapshot.histogram("adapt.model_error_w").is_some());
        assert!(snapshot.histogram("adapt.coeff_drift_w").is_some());
        // The refit reached the inner PM, not just the layer's copy.
        let inner = layer.inner().model().coefficients(PStateId::new(7)).unwrap();
        assert_eq!(*inner, *layer.live_model().coefficients(PStateId::new(7)).unwrap());
    }

    #[test]
    fn zero_dpc_variance_window_falls_back_to_seed() {
        let table = PStateTable::pentium_m_755();
        let config = AdaptiveConfig { window: 20, ..AdaptiveConfig::default() };
        let mut layer = adaptive_pm(30.0, config);
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut layer, metrics.clone());
        // Constant DPC: a point, not a line. Even with power 2 W off the
        // model, no refit may be pushed.
        for _ in 0..100 {
            drive(&mut layer, &table, 7, 1.0, Some(2.93 + 12.11 + 2.0));
        }
        assert!(!layer.is_refit(), "a zero-variance window must not refit");
        let live = layer.live_model().coefficients(PStateId::new(7)).unwrap();
        assert_eq!((live.alpha, live.beta), (2.93, 12.11), "seed survives");
        assert!(metrics.snapshot().counter("adapt.degenerate_windows") >= 1);
        assert_eq!(metrics.snapshot().counter("adapt.refit_count"), 0);
    }

    #[test]
    fn telemetry_outage_restores_the_seed_model() {
        let table = PStateTable::pentium_m_755();
        let config = AdaptiveConfig { window: 25, ..AdaptiveConfig::default() };
        let mut layer = adaptive_pm(30.0, config);
        let metrics = Metrics::enabled();
        Governor::install_metrics(&mut layer, metrics.clone());
        // Learn a hotter regime first.
        for i in 0..100 {
            let dpc = 0.8 + 0.012 * (i % 35) as f64;
            drive(&mut layer, &table, 7, dpc, Some(2.93 * dpc + 14.11));
        }
        assert!(layer.is_refit());
        // Then a power-meter outage a full window long.
        for _ in 0..config.window {
            drive(&mut layer, &table, 7, 1.0, None);
        }
        assert!(!layer.is_refit(), "an outage must restore the seed model");
        let live = layer.live_model().coefficients(PStateId::new(7)).unwrap();
        assert_eq!((live.alpha, live.beta), (2.93, 12.11));
        let inner = layer.inner().model().coefficients(PStateId::new(7)).unwrap();
        assert_eq!((inner.alpha, inner.beta), (2.93, 12.11), "inner PM restored too");
        assert_eq!(metrics.snapshot().counter("adapt.fallbacks"), 1);
    }

    #[test]
    fn stale_counters_are_not_usable_observations() {
        let table = PStateTable::pentium_m_755();
        let config = AdaptiveConfig { window: 10, ..AdaptiveConfig::default() };
        let mut layer = adaptive_pm(30.0, config);
        // Stale (estimated) counter samples with wild power must never
        // feed the estimator — a full window of them is an outage.
        for _ in 0..config.window {
            let s = sample(5.0, false);
            let p = power(50.0);
            let ctx = SampleContext {
                counters: &s,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            layer.decide(&ctx);
        }
        assert!(!layer.is_refit());
        assert_eq!(layer.fits.iter().map(|f| f.estimator.samples()).sum::<u64>(), 0);
    }

    #[test]
    fn decisions_are_always_the_inner_governors() {
        let table = PStateTable::pentium_m_755();
        // Same stream through plain PM and adaptive PM *before any refit
        // window completes*: decisions must be identical (the layer only
        // acts through commands).
        let model = PowerModel::paper_table_ii();
        let mut pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(15.0).unwrap());
        let big_window = AdaptiveConfig { window: 10_000, ..AdaptiveConfig::default() };
        let mut layer = adaptive_pm(15.0, big_window);
        let mut current_a = 7;
        let mut current_b = 7;
        for i in 0..200 {
            let dpc = 0.5 + 0.02 * (i % 60) as f64;
            let watts = 2.93 * dpc + 12.11;
            let s = sample(dpc, true);
            let p = power(watts);
            let ctx_a = SampleContext {
                counters: &s,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(current_a),
                table: &table,
                queue: None,
            };
            let ctx_b = SampleContext {
                counters: &s,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(current_b),
                table: &table,
                queue: None,
            };
            current_a = pm.decide(&ctx_a).index();
            current_b = layer.decide(&ctx_b).index();
            assert_eq!(current_a, current_b, "interval {i}");
        }
    }

    #[test]
    fn events_are_deduped_not_duplicated() {
        let model = PowerModel::paper_table_ii();
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5).unwrap());
        let single = Adaptive::new(pm, model.clone());
        // PM already monitors InstructionsDecoded; the layer must not
        // request it twice (a duplicate would look like a third event and
        // force multiplexing).
        assert_eq!(single.events(), vec![HardwareEvent::InstructionsDecoded]);
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5).unwrap());
        let multi = Adaptive::with_config(
            pm,
            model,
            AdaptiveConfig { multi_counter: true, ..AdaptiveConfig::default() },
        )
        .unwrap();
        assert_eq!(
            multi.events(),
            vec![HardwareEvent::InstructionsDecoded, HardwareEvent::DcuMissOutstanding]
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let model = PowerModel::paper_table_ii();
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5).unwrap());
        let bad_forgetting = AdaptiveConfig { forgetting: 0.0, ..AdaptiveConfig::default() };
        assert!(Adaptive::with_config(pm, model.clone(), bad_forgetting).is_err());
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(13.5).unwrap());
        let bad_window = AdaptiveConfig { window: 0, ..AdaptiveConfig::default() };
        assert!(Adaptive::with_config(pm, model, bad_window).is_err());
    }

    #[test]
    fn multi_counter_basis_learns_a_dcu_term() {
        let table = PStateTable::pentium_m_755();
        let config =
            AdaptiveConfig { window: 40, multi_counter: true, ..AdaptiveConfig::default() };
        let model = PowerModel::paper_table_ii();
        let pm = PerformanceMaximizer::new(model.clone(), PowerLimit::new(30.0).unwrap());
        let mut layer = Adaptive::with_config(pm, model, config).unwrap();
        // Power carries a DCU-proportional term Table II cannot see:
        // P = 2.93·DPC + 3·DCU + 12.11, DCU swinging with a different
        // period than DPC.
        let cycles = 20e6;
        for i in 0..160 {
            let dpc = 0.8 + 0.01 * (i % 40) as f64;
            let dcu = 0.3 + 0.005 * (i % 23) as f64;
            let s = CounterSample {
                start: Seconds::ZERO,
                end: Seconds::from_millis(10.0),
                cycles,
                counts: vec![
                    (HardwareEvent::InstructionsDecoded, dpc * cycles, true),
                    (HardwareEvent::DcuMissOutstanding, dcu * cycles, true),
                ],
            };
            let p = power(2.93 * dpc + 3.0 * dcu + 12.11);
            let ctx = SampleContext {
                counters: &s,
                power: Some(&p),
                temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            layer.decide(&ctx);
        }
        assert!(layer.is_refit(), "the DCU term is learnable signal");
        // The collapsed model should sit near the mean-DCU regime: at the
        // mean DCU (~0.355) the extra draw is ~1.07 W over Table II.
        let live = layer.live_model().coefficients(PStateId::new(7)).unwrap();
        let at_mean = live.alpha * 1.0 + live.beta;
        assert!(
            (at_mean - (2.93 + 12.11)).abs() > 0.5,
            "collapsed fit must absorb the DCU draw, got {at_mean}"
        );
    }
}
