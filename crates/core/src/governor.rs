//! The governor abstraction: the paper's Monitor → Estimate → Control loop.
//!
//! Every 10 ms the runtime hands the governor a [`SampleContext`] — the
//! counter sample its requested events produced, the current p-state and
//! table — and the governor returns the p-state to run next. Governors are
//! *application-aware by construction*: they see only what the PMC driver
//! reports, never the machine's internals (just like the paper's user-level
//! prototypes).

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::requests::QueueSample;
use aapm_platform::thermal::Celsius;
use aapm_platform::throttle::ThrottleLevel;
use aapm_models::power_model::PStateCoefficients;
use aapm_telemetry::daq::PowerSample;
use aapm_telemetry::metrics::Metrics;
use aapm_telemetry::pmc::CounterSample;

use crate::limits::{PerformanceFloor, PowerLimit};

/// Everything a governor may observe in one control interval.
#[derive(Debug)]
pub struct SampleContext<'a> {
    /// The counter sample for this interval (rates for requested events).
    pub counters: &'a CounterSample,
    /// The interval's measured power sample, when a meter is attached.
    /// The paper's PM and PS are counter-predictive and ignore it; the
    /// measured-feedback extension ([`crate::feedback::FeedbackPm`]) uses it.
    pub power: Option<&'a PowerSample>,
    /// The die temperature reported by the on-die sensor, when attached.
    pub temperature: Option<Celsius>,
    /// The p-state in effect during the interval.
    pub current: PStateId,
    /// The platform's p-state table.
    pub table: &'a PStateTable,
    /// The request-queue sample for serve-mode (open-loop) sessions:
    /// end-of-interval depth, conservation counters, and the sojourn times
    /// completed this interval. `None` on batch runs — queue-aware
    /// governors (e.g. [`crate::slo_save::SloSave`]) must degrade
    /// gracefully, exactly like missing power or thermal telemetry.
    pub queue: Option<&'a QueueSample>,
}

/// A runtime command delivered to a governor mid-run — the simulation
/// analogue of the paper's `SIGUSR1`/`SIGUSR2` limit-change signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorCommand {
    /// Change the power limit (PM).
    SetPowerLimit(PowerLimit),
    /// Change the performance floor (PS).
    SetPerformanceFloor(PerformanceFloor),
    /// Replace one p-state's power-model coefficients (the online refit
    /// path: [`crate::adaptive::Adaptive`] sends this inward to whichever
    /// model-driven governor it wraps). Governors without a power model
    /// ignore it, like any other inapplicable command.
    SetPowerCoefficients(PStateId, PStateCoefficients),
}

/// A p-state governor.
///
/// Implementations must be deterministic functions of the observed sample
/// stream (all reproduction experiments rely on replayability).
pub trait Governor {
    /// Short name used in reports (`"pm"`, `"ps"`, `"static-1800"`, …).
    fn name(&self) -> &str;

    /// Hardware events this governor needs monitored. More than two
    /// programmable events forces the PMC driver to multiplex — part of why
    /// the paper's solutions use so few counters.
    fn events(&self) -> Vec<HardwareEvent>;

    /// Chooses the p-state for the next interval.
    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId;

    /// Chooses the clock-modulation duty for the next interval. Most
    /// governors actuate DVFS only; the default keeps the clock ungated.
    fn throttle_decision(&mut self, _ctx: &SampleContext<'_>) -> ThrottleLevel {
        ThrottleLevel::FULL
    }

    /// Delivers a runtime command. The default implementation ignores it.
    fn command(&mut self, _command: GovernorCommand) {}

    /// Installs a metrics handle for governor-internal observability
    /// (hold-window events, guardband margins, projection errors). The
    /// runtime calls this once before the control loop starts; decorators
    /// must forward the handle to their inner governor.
    ///
    /// The handle is write-only by contract: recording must never perturb a
    /// decision (DESIGN.md §9), so a run with metrics installed stays
    /// bit-identical to one without. The default implementation discards
    /// the handle, which is correct for governors with no internal state
    /// worth exporting.
    fn install_metrics(&mut self, _metrics: Metrics) {}
}

/// A heap-allocated governor forwarding the whole trait surface.
///
/// Decorators are generic over their inner governor, so nesting governors
/// built at runtime (e.g. from a [`crate::spec::GovernorSpec`]) needs a
/// *concrete* type wrapping `Box<dyn Governor>`. A blanket
/// `impl Governor for Box<G>` would risk a coherence conflict with the
/// [`crate::layer::GovernorLayer`] blanket impl (`Box` is a fundamental
/// type), hence this newtype.
pub struct BoxedGovernor(pub Box<dyn Governor>);

impl std::fmt::Debug for BoxedGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("BoxedGovernor").field(&self.0.name()).finish()
    }
}

impl Governor for BoxedGovernor {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn events(&self) -> Vec<HardwareEvent> {
        self.0.events()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        self.0.decide(ctx)
    }

    fn throttle_decision(&mut self, ctx: &SampleContext<'_>) -> ThrottleLevel {
        self.0.throttle_decision(ctx)
    }

    fn command(&mut self, command: GovernorCommand) {
        self.0.command(command);
    }

    fn install_metrics(&mut self, metrics: Metrics) {
        self.0.install_metrics(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must stay object-safe: the runtime holds `&mut dyn
    /// Governor`.
    #[test]
    fn governor_is_object_safe() {
        struct Pinned;
        impl Governor for Pinned {
            fn name(&self) -> &str {
                "pinned"
            }
            fn events(&self) -> Vec<HardwareEvent> {
                Vec::new()
            }
            fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
                ctx.current
            }
        }
        let mut g = Pinned;
        let _obj: &mut dyn Governor = &mut g;
        assert_eq!(_obj.name(), "pinned");
    }
}
