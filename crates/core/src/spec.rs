//! Data-driven governor construction: [`GovernorSpec`] and its registry.
//!
//! Experiments used to duplicate `Box<dyn Governor>` factory closures at
//! every call site. A `GovernorSpec` is the declarative replacement: a
//! serializable description of a governor stack (including nested
//! [`Watchdog`](crate::watchdog::Watchdog) /
//! [`ThermalGuard`](crate::thermal_guard::ThermalGuard) wrappers) that
//! [`GovernorSpec::build`] turns into a live governor against a chosen set
//! of models. The JSON form doubles as run provenance: the experiment
//! harness records it in the `--trace-out` JSONL header, so a trace file
//! says exactly which policy produced it.
//!
//! The crate vendors no serde, so the JSON codec is hand-rolled: a fixed
//! key order on output and the shared [`crate::json`] recursive-descent
//! parser on input, with the round-trip (`to_json` → `from_json` →
//! `to_json`) an identity. The parser rejects duplicate keys and
//! non-finite numeric literals outright (see [`crate::json`]).

use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Seconds;

use crate::adaptive::{Adaptive, AdaptiveConfig};
use crate::baselines::{DemandBasedSwitching, StaticClock, Unconstrained};
use crate::json::Json;
use crate::combined_pm::CombinedPm;
use crate::feedback::FeedbackPm;
use crate::governor::{BoxedGovernor, Governor};
use crate::limits::{PerformanceFloor, PowerLimit};
use crate::phase_pm::PhasePm;
use crate::pm::PerformanceMaximizer;
use crate::ps::PowerSave;
use crate::slo_save::SloSave;
use crate::thermal_guard::ThermalGuard;
use crate::throttle_save::ThrottleSave;
use crate::watchdog::Watchdog;

/// The models a spec is built against. Specs carry policy *parameters*
/// (limits, floors, targets); the estimation models come from the caller —
/// typically a characterized [`PowerModel`] and the paper's eq.-3
/// [`PerfModel`].
#[derive(Debug, Clone)]
pub struct SpecModels {
    /// Power model for PM-family governors.
    pub power: PowerModel,
    /// Performance model for PS.
    pub perf: PerfModel,
}

impl Default for SpecModels {
    /// The paper's published models (Table II power, eq.-3 performance).
    fn default() -> Self {
        SpecModels {
            power: PowerModel::paper_table_ii(),
            perf: PerfModel::new(PerfModelParams::paper()),
        }
    }
}

/// A serializable description of a governor stack.
///
/// # Examples
///
/// ```
/// use aapm::spec::{GovernorSpec, SpecModels};
///
/// let spec = GovernorSpec::Watchdog {
///     inner: Box::new(GovernorSpec::Pm { limit_w: 12.5 }),
/// };
/// assert_eq!(spec.to_json(), r#"{"kind":"watchdog","inner":{"kind":"pm","limit_w":12.5}}"#);
/// assert_eq!(GovernorSpec::from_json(&spec.to_json())?, spec);
/// let governor = spec.build(&SpecModels::default())?;
/// assert_eq!(governor.name(), "watchdog<pm>");
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GovernorSpec {
    /// [`Unconstrained`]: always the highest p-state.
    Unconstrained,
    /// [`StaticClock`] pinned to p-state index `pstate`.
    StaticClock {
        /// P-state table index to pin.
        pstate: usize,
    },
    /// [`DemandBasedSwitching`] at a target utilization.
    Dbs {
        /// Utilization setpoint in (0, 1].
        target_utilization: f64,
    },
    /// [`PerformanceMaximizer`] under a power limit.
    Pm {
        /// Power limit in watts.
        limit_w: f64,
    },
    /// [`PowerSave`] above a performance floor.
    Ps {
        /// Performance floor as a fraction of peak in (0, 1].
        floor: f64,
    },
    /// [`FeedbackPm`]: PM with measured-power feedback.
    FeedbackPm {
        /// Power limit in watts.
        limit_w: f64,
    },
    /// [`CombinedPm`]: PM with clock modulation for deep caps.
    CombinedPm {
        /// Power limit in watts.
        limit_w: f64,
    },
    /// [`PhasePm`]: PM with phase-aware raise decisions.
    PhasePm {
        /// Power limit in watts.
        limit_w: f64,
    },
    /// [`ThrottleSave`]: clock modulation above a performance floor.
    ThrottleSave {
        /// Performance floor as a fraction of peak in (0, 1].
        floor: f64,
    },
    /// [`SloSave`]: energy saver under a p99 sojourn-time SLO (serve
    /// workloads).
    SloSave {
        /// The p99 sojourn-time SLO in milliseconds.
        slo_ms: f64,
    },
    /// [`Watchdog`] wrapped around an inner spec.
    Watchdog {
        /// The wrapped governor's spec.
        inner: Box<GovernorSpec>,
    },
    /// [`ThermalGuard`] wrapped around an inner spec.
    ThermalGuard {
        /// The wrapped governor's spec.
        inner: Box<GovernorSpec>,
    },
    /// [`Adaptive`] online model refit wrapped around an inner spec.
    Adaptive {
        /// RLS forgetting factor in (0, 1].
        forgetting: f64,
        /// Accepted samples per p-state between refit pushes (also the
        /// outage threshold).
        window: usize,
        /// Counter basis: 1 = DPC only (paper), 2 = DPC + DCU (Mazzola).
        counters: usize,
        /// The wrapped governor's spec.
        inner: Box<GovernorSpec>,
    },
}

/// One registry row: spec kind, JSON parameters, and what it builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The `"kind"` discriminator in the JSON form.
    pub kind: &'static str,
    /// The other JSON keys the kind takes.
    pub params: &'static str,
    /// One-line description of the governor built.
    pub description: &'static str,
}

/// Every kind the registry can build, for `--list-governors` and docs.
pub const REGISTRY: &[RegistryEntry] = &[
    RegistryEntry {
        kind: "unconstrained",
        params: "",
        description: "always the highest p-state (performance baseline)",
    },
    RegistryEntry {
        kind: "static-clock",
        params: "pstate",
        description: "pinned to one p-state (worst-case static clocking)",
    },
    RegistryEntry {
        kind: "dbs",
        params: "target_utilization",
        description: "demand-based switching toward a utilization setpoint",
    },
    RegistryEntry {
        kind: "pm",
        params: "limit_w",
        description: "performance maximizer under a power limit (paper PM)",
    },
    RegistryEntry {
        kind: "ps",
        params: "floor",
        description: "power saver above a performance floor (paper PS)",
    },
    RegistryEntry {
        kind: "feedback-pm",
        params: "limit_w",
        description: "PM with measured-power feedback correction",
    },
    RegistryEntry {
        kind: "combined-pm",
        params: "limit_w",
        description: "PM plus clock modulation for deep power caps",
    },
    RegistryEntry {
        kind: "phase-pm",
        params: "limit_w",
        description: "PM with phase-change-triggered immediate raises",
    },
    RegistryEntry {
        kind: "throttle-save",
        params: "floor",
        description: "clock-modulation-only power saver above a floor",
    },
    RegistryEntry {
        kind: "slo-save",
        params: "slo_ms",
        description: "energy saver under a p99 sojourn-time SLO (serve workloads)",
    },
    RegistryEntry {
        kind: "watchdog",
        params: "inner",
        description: "telemetry-blackout watchdog wrapped around an inner spec",
    },
    RegistryEntry {
        kind: "thermal-guard",
        params: "inner",
        description: "die-temperature envelope wrapped around an inner spec",
    },
    RegistryEntry {
        kind: "adaptive",
        params: "forgetting, window, counters, inner",
        description: "online RLS refit of the power model around an inner spec",
    },
];

impl GovernorSpec {
    /// The `"kind"` discriminator of this spec's JSON form.
    pub fn kind(&self) -> &'static str {
        match self {
            GovernorSpec::Unconstrained => "unconstrained",
            GovernorSpec::StaticClock { .. } => "static-clock",
            GovernorSpec::Dbs { .. } => "dbs",
            GovernorSpec::Pm { .. } => "pm",
            GovernorSpec::Ps { .. } => "ps",
            GovernorSpec::FeedbackPm { .. } => "feedback-pm",
            GovernorSpec::CombinedPm { .. } => "combined-pm",
            GovernorSpec::PhasePm { .. } => "phase-pm",
            GovernorSpec::ThrottleSave { .. } => "throttle-save",
            GovernorSpec::SloSave { .. } => "slo-save",
            GovernorSpec::Watchdog { .. } => "watchdog",
            GovernorSpec::ThermalGuard { .. } => "thermal-guard",
            GovernorSpec::Adaptive { .. } => "adaptive",
        }
    }

    /// The report name the built governor will carry (`"pm"`,
    /// `"watchdog<pm>"`, …) without building it.
    pub fn governor_name(&self) -> String {
        match self {
            GovernorSpec::Unconstrained => "unconstrained".to_owned(),
            GovernorSpec::StaticClock { pstate } => format!("static-p{pstate}"),
            GovernorSpec::Dbs { .. } => "dbs".to_owned(),
            GovernorSpec::Pm { .. } => "pm".to_owned(),
            GovernorSpec::Ps { .. } => "ps".to_owned(),
            GovernorSpec::FeedbackPm { .. } => "pm-feedback".to_owned(),
            GovernorSpec::CombinedPm { .. } => "pm-combined".to_owned(),
            GovernorSpec::PhasePm { .. } => "pm-phase".to_owned(),
            GovernorSpec::ThrottleSave { .. } => "throttle-save".to_owned(),
            GovernorSpec::SloSave { .. } => "slo-save".to_owned(),
            GovernorSpec::Watchdog { inner } => format!("watchdog<{}>", inner.governor_name()),
            GovernorSpec::ThermalGuard { inner } => format!("thermal<{}>", inner.governor_name()),
            GovernorSpec::Adaptive { inner, .. } => format!("adaptive<{}>", inner.governor_name()),
        }
    }

    /// Builds the governor stack this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation ([`PowerLimit::new`],
    /// [`PerformanceFloor::new`], [`DemandBasedSwitching::with_target`]).
    pub fn build(&self, models: &SpecModels) -> Result<Box<dyn Governor>> {
        Ok(match self {
            GovernorSpec::Unconstrained => Box::new(Unconstrained::new()),
            GovernorSpec::StaticClock { pstate } => {
                Box::new(StaticClock::new(PStateId::new(*pstate)))
            }
            GovernorSpec::Dbs { target_utilization } => {
                Box::new(DemandBasedSwitching::with_target(*target_utilization)?)
            }
            GovernorSpec::Pm { limit_w } => Box::new(PerformanceMaximizer::new(
                models.power.clone(),
                PowerLimit::new(*limit_w)?,
            )),
            GovernorSpec::Ps { floor } => {
                Box::new(PowerSave::new(models.perf, PerformanceFloor::new(*floor)?))
            }
            GovernorSpec::FeedbackPm { limit_w } => {
                Box::new(FeedbackPm::new(models.power.clone(), PowerLimit::new(*limit_w)?))
            }
            GovernorSpec::CombinedPm { limit_w } => {
                Box::new(CombinedPm::new(models.power.clone(), PowerLimit::new(*limit_w)?))
            }
            GovernorSpec::PhasePm { limit_w } => {
                Box::new(PhasePm::new(models.power.clone(), PowerLimit::new(*limit_w)?))
            }
            GovernorSpec::ThrottleSave { floor } => {
                Box::new(ThrottleSave::new(PerformanceFloor::new(*floor)?))
            }
            GovernorSpec::SloSave { slo_ms } => {
                Box::new(SloSave::new(Seconds::from_millis(*slo_ms))?)
            }
            GovernorSpec::Watchdog { inner } => {
                Box::new(Watchdog::new(BoxedGovernor(inner.build(models)?)))
            }
            GovernorSpec::ThermalGuard { inner } => {
                Box::new(ThermalGuard::new(BoxedGovernor(inner.build(models)?)))
            }
            GovernorSpec::Adaptive { forgetting, window, counters, inner } => {
                let multi_counter = match counters {
                    1 => false,
                    2 => true,
                    other => {
                        return Err(invalid(format!(
                            "adaptive \"counters\" must be 1 or 2, got {other}"
                        )))
                    }
                };
                let config = AdaptiveConfig { forgetting: *forgetting, window: *window, multi_counter };
                Box::new(Adaptive::with_config(
                    BoxedGovernor(inner.build(models)?),
                    models.power.clone(),
                    config,
                )?)
            }
        })
    }

    /// Renders the spec as one line of JSON with a fixed key order
    /// (`"kind"` first), so equal specs render identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(48);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"kind\":\"{}\"", self.kind());
        match self {
            GovernorSpec::Unconstrained => {}
            GovernorSpec::StaticClock { pstate } => {
                let _ = write!(out, ",\"pstate\":{pstate}");
            }
            GovernorSpec::Dbs { target_utilization } => {
                let _ = write!(out, ",\"target_utilization\":{target_utilization}");
            }
            GovernorSpec::Pm { limit_w }
            | GovernorSpec::FeedbackPm { limit_w }
            | GovernorSpec::CombinedPm { limit_w }
            | GovernorSpec::PhasePm { limit_w } => {
                let _ = write!(out, ",\"limit_w\":{limit_w}");
            }
            GovernorSpec::Ps { floor } | GovernorSpec::ThrottleSave { floor } => {
                let _ = write!(out, ",\"floor\":{floor}");
            }
            GovernorSpec::SloSave { slo_ms } => {
                let _ = write!(out, ",\"slo_ms\":{slo_ms}");
            }
            GovernorSpec::Watchdog { inner } | GovernorSpec::ThermalGuard { inner } => {
                out.push_str(",\"inner\":");
                inner.write_json(out);
            }
            GovernorSpec::Adaptive { forgetting, window, counters, inner } => {
                let _ = write!(
                    out,
                    ",\"forgetting\":{forgetting},\"window\":{window},\"counters\":{counters}"
                );
                out.push_str(",\"inner\":");
                inner.write_json(out);
            }
        }
        out.push('}');
    }

    /// Parses a spec from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on malformed JSON
    /// (including duplicate keys and non-finite numbers — see
    /// [`crate::json`]), an unknown `"kind"`, or missing/extra keys.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = crate::json::parse(text).map_err(invalid)?;
        GovernorSpec::from_value(&value)
    }

    /// Parses a spec from an already-parsed [`Json`] value — the hook the
    /// fuzz harness's scenario grammar uses to embed specs in larger
    /// documents.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] on an unknown `"kind"` or
    /// missing/extra keys.
    pub fn from_value(value: &Json) -> Result<Self> {
        let Json::Object(fields) = value else {
            return Err(invalid("governor spec must be a JSON object".to_owned()));
        };
        let kind = match fields.iter().find(|(k, _)| k == "kind") {
            Some((_, Json::String(kind))) => kind.as_str(),
            Some(_) => return Err(invalid("\"kind\" must be a string".to_owned())),
            None => return Err(invalid("governor spec missing \"kind\"".to_owned())),
        };
        let expect_number = |key: &str| -> Result<f64> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, Json::Number(v))) => Ok(*v),
                Some(_) => Err(invalid(format!("\"{key}\" must be a number for kind \"{kind}\""))),
                None => Err(invalid(format!("kind \"{kind}\" requires \"{key}\""))),
            }
        };
        let expect_keys = |keys: &[&str]| -> Result<()> {
            for (k, _) in fields {
                if k != "kind" && !keys.contains(&k.as_str()) {
                    return Err(invalid(format!("unexpected key \"{k}\" for kind \"{kind}\"")));
                }
            }
            Ok(())
        };
        let spec = match kind {
            "unconstrained" => {
                expect_keys(&[])?;
                GovernorSpec::Unconstrained
            }
            "static-clock" => {
                expect_keys(&["pstate"])?;
                let raw = expect_number("pstate")?;
                if raw < 0.0 || raw.fract() != 0.0 || !raw.is_finite() {
                    return Err(invalid(format!(
                        "\"pstate\" must be a non-negative integer, got {raw}"
                    )));
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                GovernorSpec::StaticClock { pstate: raw as usize }
            }
            "dbs" => {
                expect_keys(&["target_utilization"])?;
                GovernorSpec::Dbs { target_utilization: expect_number("target_utilization")? }
            }
            "pm" => {
                expect_keys(&["limit_w"])?;
                GovernorSpec::Pm { limit_w: expect_number("limit_w")? }
            }
            "ps" => {
                expect_keys(&["floor"])?;
                GovernorSpec::Ps { floor: expect_number("floor")? }
            }
            "feedback-pm" => {
                expect_keys(&["limit_w"])?;
                GovernorSpec::FeedbackPm { limit_w: expect_number("limit_w")? }
            }
            "combined-pm" => {
                expect_keys(&["limit_w"])?;
                GovernorSpec::CombinedPm { limit_w: expect_number("limit_w")? }
            }
            "phase-pm" => {
                expect_keys(&["limit_w"])?;
                GovernorSpec::PhasePm { limit_w: expect_number("limit_w")? }
            }
            "throttle-save" => {
                expect_keys(&["floor"])?;
                GovernorSpec::ThrottleSave { floor: expect_number("floor")? }
            }
            "slo-save" => {
                expect_keys(&["slo_ms"])?;
                GovernorSpec::SloSave { slo_ms: expect_number("slo_ms")? }
            }
            "watchdog" | "thermal-guard" => {
                expect_keys(&["inner"])?;
                let inner = match fields.iter().find(|(k, _)| k == "inner") {
                    Some((_, value)) => Box::new(GovernorSpec::from_value(value)?),
                    None => {
                        return Err(invalid(format!("kind \"{kind}\" requires \"inner\"")));
                    }
                };
                if kind == "watchdog" {
                    GovernorSpec::Watchdog { inner }
                } else {
                    GovernorSpec::ThermalGuard { inner }
                }
            }
            "adaptive" => {
                expect_keys(&["forgetting", "window", "counters", "inner"])?;
                let expect_integer = |key: &str| -> Result<usize> {
                    let raw = expect_number(key)?;
                    if raw < 0.0 || raw.fract() != 0.0 || !raw.is_finite() {
                        return Err(invalid(format!(
                            "\"{key}\" must be a non-negative integer, got {raw}"
                        )));
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Ok(raw as usize)
                };
                let inner = match fields.iter().find(|(k, _)| k == "inner") {
                    Some((_, value)) => Box::new(GovernorSpec::from_value(value)?),
                    None => {
                        return Err(invalid(format!("kind \"{kind}\" requires \"inner\"")));
                    }
                };
                GovernorSpec::Adaptive {
                    forgetting: expect_number("forgetting")?,
                    window: expect_integer("window")?,
                    counters: expect_integer("counters")?,
                    inner,
                }
            }
            other => {
                let known: Vec<&str> = REGISTRY.iter().map(|e| e.kind).collect();
                return Err(invalid(format!(
                    "unknown governor kind \"{other}\" (known: {})",
                    known.join(", ")
                )));
            }
        };
        Ok(spec)
    }
}

fn invalid(reason: String) -> PlatformError {
    PlatformError::InvalidConfig { parameter: "governor_spec", reason }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<GovernorSpec> {
        vec![
            GovernorSpec::Unconstrained,
            GovernorSpec::StaticClock { pstate: 4 },
            GovernorSpec::Dbs { target_utilization: 0.8 },
            GovernorSpec::Pm { limit_w: 12.5 },
            GovernorSpec::Ps { floor: 0.6 },
            GovernorSpec::FeedbackPm { limit_w: 17.5 },
            GovernorSpec::CombinedPm { limit_w: 3.5 },
            GovernorSpec::PhasePm { limit_w: 10.5 },
            GovernorSpec::ThrottleSave { floor: 0.75 },
            GovernorSpec::SloSave { slo_ms: 50.0 },
            GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::Pm { limit_w: 12.5 }) },
            GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::SloSave { slo_ms: 80.0 }) },
            GovernorSpec::ThermalGuard {
                inner: Box::new(GovernorSpec::Watchdog {
                    inner: Box::new(GovernorSpec::Ps { floor: 0.8 }),
                }),
            },
            GovernorSpec::Adaptive {
                forgetting: 0.98,
                window: 50,
                counters: 1,
                inner: Box::new(GovernorSpec::Pm { limit_w: 13.5 }),
            },
            GovernorSpec::Watchdog {
                inner: Box::new(GovernorSpec::Adaptive {
                    forgetting: 0.95,
                    window: 40,
                    counters: 2,
                    inner: Box::new(GovernorSpec::FeedbackPm { limit_w: 12.5 }),
                }),
            },
        ]
    }

    /// JSON → spec → JSON is an identity, including nested wrappers.
    #[test]
    fn json_round_trip_is_identity() {
        for spec in every_kind() {
            let json = spec.to_json();
            let parsed = GovernorSpec::from_json(&json).unwrap();
            assert_eq!(parsed, spec, "{json}");
            assert_eq!(parsed.to_json(), json, "second render must match the first");
        }
    }

    /// Every registry kind builds, and the built governor's report name
    /// matches the spec's predicted name.
    #[test]
    fn every_kind_builds_with_matching_name() {
        let models = SpecModels::default();
        for spec in every_kind() {
            let governor = spec.build(&models).unwrap();
            assert_eq!(governor.name(), spec.governor_name(), "{}", spec.to_json());
        }
        let kinds: Vec<&str> = every_kind().iter().map(GovernorSpec::kind).collect();
        for entry in REGISTRY {
            assert!(kinds.contains(&entry.kind), "untested registry kind {}", entry.kind);
        }
    }

    #[test]
    fn whitespace_and_key_order_are_tolerated() {
        let spec = GovernorSpec::from_json(
            " { \"limit_w\" : 14.5 ,\n\t\"kind\" : \"pm\" } ",
        )
        .unwrap();
        assert_eq!(spec, GovernorSpec::Pm { limit_w: 14.5 });
    }

    #[test]
    fn nested_wrapper_round_trips_through_build() {
        let json = r#"{"kind":"watchdog","inner":{"kind":"thermal-guard","inner":{"kind":"pm","limit_w":12.5}}}"#;
        let spec = GovernorSpec::from_json(json).unwrap();
        assert_eq!(spec.to_json(), json);
        let governor = spec.build(&SpecModels::default()).unwrap();
        assert_eq!(governor.name(), "watchdog<thermal<pm>>");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "[]",
            "{\"kind\":\"pm\"}",                          // missing limit_w
            "{\"kind\":\"pm\",\"limit_w\":\"x\"}",        // wrong type
            "{\"kind\":\"pm\",\"limit_w\":1,\"z\":2}",    // extra key
            "{\"kind\":\"nope\"}",                        // unknown kind
            "{\"kind\":\"watchdog\"}",                    // missing inner
            "{\"kind\":\"static-clock\",\"pstate\":1.5}", // fractional index
            "{\"kind\":\"pm\",\"limit_w\":1} trailing",
            "{\"kind\":\"pm\",\"limit_w\":1,\"limit_w\":2}", // duplicate key
        ] {
            assert!(GovernorSpec::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// A numeric literal that overflows f64 (the JSON spelling of ±inf)
    /// must be rejected with an error that names the problem; NaN has no
    /// JSON spelling and the keyword forms must not parse either.
    #[test]
    fn non_finite_numerics_are_rejected_with_explicit_errors() {
        for bad in [
            "{\"kind\":\"pm\",\"limit_w\":1e999}",
            "{\"kind\":\"pm\",\"limit_w\":-1e999}",
            "{\"kind\":\"dbs\",\"target_utilization\":2e308}",
        ] {
            let err = GovernorSpec::from_json(bad).unwrap_err();
            assert!(
                err.to_string().contains("non-finite number"),
                "{bad:?} must be rejected as non-finite, got: {err}"
            );
        }
        for bad in [
            "{\"kind\":\"pm\",\"limit_w\":NaN}",
            "{\"kind\":\"pm\",\"limit_w\":inf}",
            "{\"kind\":\"pm\",\"limit_w\":-Infinity}",
        ] {
            assert!(GovernorSpec::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Duplicate keys are rejected (not last-one-wins) and the error names
    /// the offending key, at any nesting depth.
    #[test]
    fn duplicate_keys_are_rejected_with_explicit_errors() {
        let err = GovernorSpec::from_json("{\"kind\":\"pm\",\"limit_w\":1,\"limit_w\":2}")
            .unwrap_err();
        assert!(
            err.to_string().contains("duplicate key \"limit_w\""),
            "error must name the duplicated key, got: {err}"
        );
        let nested = "{\"kind\":\"watchdog\",\"inner\":{\"kind\":\"ps\",\"floor\":0.8,\"floor\":0.9}}";
        let err = GovernorSpec::from_json(nested).unwrap_err();
        assert!(err.to_string().contains("duplicate key \"floor\""), "got: {err}");
    }

    /// Invalid parameter values surface at build time via the constructors'
    /// own validation.
    #[test]
    fn build_propagates_parameter_validation() {
        let models = SpecModels::default();
        assert!(GovernorSpec::Pm { limit_w: -1.0 }.build(&models).is_err());
        assert!(GovernorSpec::Ps { floor: 1.5 }.build(&models).is_err());
        assert!(GovernorSpec::Dbs { target_utilization: 0.0 }.build(&models).is_err());
        let inner = Box::new(GovernorSpec::Pm { limit_w: 13.5 });
        let bad_forgetting = GovernorSpec::Adaptive {
            forgetting: 0.0,
            window: 50,
            counters: 1,
            inner: inner.clone(),
        };
        assert!(bad_forgetting.build(&models).is_err());
        let bad_window =
            GovernorSpec::Adaptive { forgetting: 0.98, window: 0, counters: 1, inner: inner.clone() };
        assert!(bad_window.build(&models).is_err());
        let bad_counters =
            GovernorSpec::Adaptive { forgetting: 0.98, window: 50, counters: 3, inner };
        assert!(bad_counters.build(&models).is_err());
    }

    /// The adaptive kind round-trips with its full parameter set and
    /// composes under and over the other wrappers.
    #[test]
    fn adaptive_spec_round_trips_and_builds() {
        let json = r#"{"kind":"adaptive","forgetting":0.98,"window":50,"counters":2,"inner":{"kind":"pm","limit_w":13.5}}"#;
        let spec = GovernorSpec::from_json(json).unwrap();
        assert_eq!(spec.to_json(), json);
        let governor = spec.build(&SpecModels::default()).unwrap();
        assert_eq!(governor.name(), "adaptive<pm>");
        // Under a watchdog, over a thermal guard.
        let stacked = r#"{"kind":"watchdog","inner":{"kind":"adaptive","forgetting":0.95,"window":30,"counters":1,"inner":{"kind":"thermal-guard","inner":{"kind":"pm","limit_w":12.5}}}}"#;
        let spec = GovernorSpec::from_json(stacked).unwrap();
        assert_eq!(spec.to_json(), stacked);
        let governor = spec.build(&SpecModels::default()).unwrap();
        assert_eq!(governor.name(), "watchdog<adaptive<thermal<pm>>>");
        // Malformed adaptive parameters are rejected at parse time.
        for bad in [
            r#"{"kind":"adaptive","forgetting":0.98,"window":50,"counters":1}"#,
            r#"{"kind":"adaptive","forgetting":0.98,"window":1.5,"counters":1,"inner":{"kind":"pm","limit_w":13.5}}"#,
            r#"{"kind":"adaptive","forgetting":0.98,"window":50,"counters":-1,"inner":{"kind":"pm","limit_w":13.5}}"#,
            r#"{"kind":"adaptive","window":50,"counters":1,"inner":{"kind":"pm","limit_w":13.5}}"#,
        ] {
            assert!(GovernorSpec::from_json(bad).is_err(), "accepted {bad}");
        }
    }
}
