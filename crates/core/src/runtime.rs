//! The simulation runtime: machine + telemetry + governor, wired together.
//!
//! Reproduces the paper's software stack: a user-level controller reads the
//! PMC driver every 10 ms, consults its models, and writes the DVFS MSRs.
//! The external DAQ samples power on the same cadence (it ran at 333 kS/s in
//! the paper — far faster than needed for 10 ms averages).
//!
//! The single entry point is [`Session::builder`]: faults, scheduled
//! commands, and an observability handle are all optional builder calls,
//! and [`Session::step`] exposes the control loop one interval at a time
//! so a future scheduler can interleave many sessions.
//!
//! Sessions are generic over the [`WorkloadSource`] they drive. A batch
//! source (a [`PhaseProgram`](aapm_platform::program::PhaseProgram)) runs
//! to completion; an open-loop source keeps its machine's request queue
//! fed — the runtime pulls the arrivals for each upcoming interval before
//! ticking, drains a [`QueueSample`] afterwards, and shows it to the
//! governor ([`SampleContext::queue`]) and the metrics registry
//! (`queue.depth` gauge, `request.sojourn_s` histogram).

use aapm_platform::config::MachineConfig;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::machine::Machine;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::requests::{QueueSample, Request};
use aapm_platform::units::{Joules, Seconds};
use aapm_platform::workload::WorkloadSource;
use aapm_telemetry::daq::{DaqConfig, PowerDaq, PowerSample};
use aapm_telemetry::faults::{
    ActuationFault, FaultConfig, FaultPlan, FaultStats, FaultWindow, PowerFault,
};
use aapm_telemetry::metrics::{EventKind, Metrics};
use aapm_telemetry::pmc::PmcDriver;
use aapm_telemetry::sensor::{ThermalSensor, ThermalSensorConfig};
use aapm_telemetry::trace::RunTrace;

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::report::{RequestSummary, RunReport};
use crate::spec::{GovernorSpec, SpecModels};

/// Configuration of a governed run.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Sampling/control interval (paper: 10 ms).
    pub sample_interval: Seconds,
    /// Power-measurement chain configuration.
    pub daq: DaqConfig,
    /// On-die thermal-sensor configuration.
    pub thermal_sensor: ThermalSensorConfig,
    /// Seed for DAQ noise (machine noise comes from [`MachineConfig`]).
    pub seed: u64,
    /// Safety cap on control intervals (runaway protection).
    pub max_samples: usize,
    /// Stochastic fault injection (default: all-zero rates, provably
    /// inert — a run with the default config is bit-identical to one
    /// without fault plumbing).
    pub faults: FaultConfig,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            sample_interval: Seconds::from_millis(10.0),
            daq: DaqConfig::default(),
            thermal_sensor: ThermalSensorConfig::default(),
            seed: 0,
            max_samples: 500_000, // 5 000 simulated seconds
            faults: FaultConfig::default(),
        }
    }
}

/// A command delivered to the governor at a scheduled time — the
/// reproduction of the paper's "PM can receive a new power limit at any
/// instant" Unix-signal interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledCommand {
    /// Simulated time at which the command fires.
    pub at: Seconds,
    /// The command.
    pub command: GovernorCommand,
}

/// The p-state actuator with injected write faults layered on top.
///
/// Models an MSR-write path that can silently drop a write (retried
/// in-interval with capped backoff) or stall one for a bounded number of
/// intervals before it lands. An intact write supersedes any in-flight
/// stalled write, exactly as a later MSR write overrides an earlier one.
#[derive(Debug)]
struct FaultyActuator {
    retry_limit: usize,
    stall_intervals: usize,
    /// A stalled write still in flight: `(target, intervals until it lands)`.
    pending: Option<(PStateId, usize)>,
}

impl FaultyActuator {
    fn new(config: &FaultConfig) -> Self {
        FaultyActuator {
            retry_limit: config.retry_limit,
            stall_intervals: config.stall_intervals.max(1),
            pending: None,
        }
    }

    /// Lands any stalled write that has reached its due interval.
    fn step(&mut self, machine: &mut Machine) -> Result<()> {
        if let Some((target, remaining)) = self.pending {
            if remaining <= 1 {
                self.pending = None;
                machine.set_pstate(target)?;
            } else {
                self.pending = Some((target, remaining - 1));
            }
        }
        Ok(())
    }

    /// Applies the governor's write under the interval's actuation fault.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ActuationFailed`] (no source) when an
    /// ignored write exhausts its retries; real platform errors (e.g. an
    /// out-of-range p-state) propagate unchanged.
    #[allow(clippy::too_many_arguments)] // one call site, inside the interval loop
    fn write(
        &mut self,
        machine: &mut Machine,
        target: PStateId,
        fault: ActuationFault,
        plan: &mut FaultPlan,
        now: Seconds,
        stats: &mut FaultStats,
        metrics: &Metrics,
    ) -> Result<()> {
        match fault {
            ActuationFault::Intact => {
                self.pending = None;
                machine.set_pstate(target)
            }
            ActuationFault::Stalled => {
                stats.actuations_stalled += 1;
                metrics.inc("actuator.stalled");
                metrics.event(
                    now,
                    EventKind::ActuatorStalled { intervals: self.stall_intervals as u64 },
                );
                self.pending = Some((target, self.stall_intervals));
                Ok(())
            }
            ActuationFault::Ignored => {
                stats.actuations_ignored += 1;
                metrics.inc("actuator.ignored");
                metrics.event(now, EventKind::ActuatorIgnored { attempt: 1 });
                for retry in 0..self.retry_limit {
                    if !plan.retry_fails(now) {
                        self.pending = None;
                        metrics.inc("actuator.recoveries");
                        metrics.event(
                            now,
                            EventKind::ActuatorRecovered { attempts: retry as u64 + 2 },
                        );
                        return machine.set_pstate(target);
                    }
                    stats.actuations_ignored += 1;
                    metrics.inc("actuator.ignored");
                    metrics.event(now, EventKind::ActuatorIgnored { attempt: retry as u64 + 2 });
                }
                Err(PlatformError::ActuationFailed {
                    pstate: target.index(),
                    attempts: self.retry_limit + 1,
                    source: None,
                })
            }
        }
    }
}

/// The wire name of a command for event records.
fn command_name(command: GovernorCommand) -> &'static str {
    match command {
        GovernorCommand::SetPowerLimit(_) => "set_power_limit",
        GovernorCommand::SetPerformanceFloor(_) => "set_performance_floor",
        GovernorCommand::SetPowerCoefficients(..) => "set_power_coefficients",
    }
}

/// How a session holds its governor: borrowed from the caller (the common
/// case — the caller keeps the governor to inspect its state afterwards)
/// or owned (built from a [`GovernorSpec`]).
enum GovernorSlot<'a> {
    Borrowed(&'a mut dyn Governor),
    Owned(Box<dyn Governor>),
}

impl GovernorSlot<'_> {
    fn get_mut(&mut self) -> &mut dyn Governor {
        match self {
            GovernorSlot::Borrowed(g) => &mut **g,
            GovernorSlot::Owned(g) => &mut **g,
        }
    }

    fn get(&self) -> &dyn Governor {
        match self {
            GovernorSlot::Borrowed(g) => &**g,
            GovernorSlot::Owned(g) => &**g,
        }
    }
}

/// What [`Session::step`] reports after an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The program has intervals left to run.
    Running,
    /// The program completed or the sample cap was reached; further
    /// `step()` calls are no-ops.
    Finished,
}

impl SessionStatus {
    /// Whether the session has intervals left to run.
    pub fn is_running(self) -> bool {
        matches!(self, SessionStatus::Running)
    }

    /// Whether the session is done stepping.
    pub fn is_finished(self) -> bool {
        matches!(self, SessionStatus::Finished)
    }
}

/// Builder for a [`Session`]. Obtained from [`Session::builder`]; every
/// call except a governor is optional.
#[must_use = "a SessionBuilder does nothing until build() or run()"]
pub struct SessionBuilder<'a> {
    machine_config: MachineConfig,
    source: Box<dyn WorkloadSource>,
    config: SimulationConfig,
    governor: Option<GovernorSlot<'a>>,
    commands: Vec<ScheduledCommand>,
    fault_windows: Vec<FaultWindow>,
    metrics: Metrics,
}

impl<'a> SessionBuilder<'a> {
    /// Sets the simulation configuration (default: [`SimulationConfig::default`]).
    pub fn config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs under a borrowed governor; the caller keeps it and can inspect
    /// its state after the run.
    pub fn governor<'b>(self, governor: &'b mut dyn Governor) -> SessionBuilder<'b>
    where
        'a: 'b,
    {
        let SessionBuilder {
            machine_config, source, config, commands, fault_windows, metrics, ..
        } = self;
        SessionBuilder {
            machine_config,
            source,
            config,
            governor: Some(GovernorSlot::Borrowed(governor)),
            commands,
            fault_windows,
            metrics,
        }
    }

    /// Runs under an owned (boxed) governor.
    pub fn governor_boxed(mut self, governor: Box<dyn Governor>) -> Self {
        self.governor = Some(GovernorSlot::Owned(governor));
        self
    }

    /// Builds the governor from a [`GovernorSpec`] against `models` and
    /// runs under it.
    ///
    /// # Errors
    ///
    /// Propagates spec parameter validation ([`GovernorSpec::build`]).
    pub fn governor_spec(self, spec: &GovernorSpec, models: &SpecModels) -> Result<Self> {
        Ok(self.governor_boxed(spec.build(models)?))
    }

    /// Schedules mid-run governor commands (delivery contract on
    /// [`Session::step`]).
    pub fn commands(mut self, commands: &[ScheduledCommand]) -> Self {
        self.commands = commands.to_vec();
        self
    }

    /// Adds deterministic fault windows on top of the stochastic rates in
    /// [`SimulationConfig::faults`].
    pub fn faults(mut self, fault_windows: &[FaultWindow]) -> Self {
        self.fault_windows = fault_windows.to_vec();
        self
    }

    /// Installs an observability handle: it is cloned into the governor
    /// chain and the runtime emits structured events (decisions, hold
    /// windows, actuator retries/stalls, injected faults, command
    /// deliveries) stamped with *simulated* time, plus counters for each.
    /// A disabled handle (the default) is free; an enabled one must not
    /// perturb the simulation either — recording is observation-only
    /// (DESIGN.md §9).
    pub fn observer(mut self, metrics: &Metrics) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Validates the configuration and constructs the session's machine,
    /// telemetry chain, and fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] when no governor was set,
    /// for non-finite scheduled command times, or for invalid fault
    /// rates/windows.
    pub fn build(self) -> Result<Session<'a>> {
        let SessionBuilder {
            machine_config, source, config, governor, commands, fault_windows, metrics,
        } = self;
        let Some(mut governor) = governor else {
            return Err(PlatformError::InvalidConfig {
                parameter: "governor",
                reason: "a session needs a governor: call .governor(), \
                         .governor_boxed(), or .governor_spec()"
                    .to_owned(),
            });
        };
        for command in &commands {
            if !command.at.seconds().is_finite() {
                return Err(PlatformError::InvalidConfig {
                    parameter: "commands",
                    reason: format!(
                        "scheduled command time {} must be finite",
                        command.at.seconds()
                    ),
                });
            }
        }
        let plan = FaultPlan::with_windows(config.faults, &fault_windows)?;

        governor.get_mut().install_metrics(metrics.clone());

        let workload = source.name().to_owned();
        let open_loop = source.open_loop();
        let table = machine_config.pstates().clone();
        let machine = source.machine(machine_config);
        if open_loop && !machine.is_serving() {
            return Err(PlatformError::InvalidConfig {
                parameter: "source",
                reason: format!(
                    "open-loop workload '{workload}' must build a serve-mode machine"
                ),
            });
        }
        let daq = PowerDaq::new(config.daq, config.seed);
        let pmc = PmcDriver::new(governor.get().events());
        let thermal = ThermalSensor::new(config.thermal_sensor, config.seed);
        let actuator = FaultyActuator::new(&config.faults);
        let trace = RunTrace::new(config.sample_interval);

        let mut pending = commands;
        pending.sort_by(|a, b| a.at.seconds().total_cmp(&b.at.seconds()));

        Ok(Session {
            config,
            governor,
            source,
            open_loop,
            arrivals: Vec::new(),
            queue_sample: None,
            machine,
            daq,
            pmc,
            thermal,
            actuator,
            trace,
            plan,
            stats: FaultStats::default(),
            metrics,
            table,
            workload,
            pending,
            next_command: 0,
            last_delivered: None,
            samples: 0,
        })
    }

    /// Convenience: [`build`](SessionBuilder::build) then
    /// [`Session::run`].
    ///
    /// # Errors
    ///
    /// As [`SessionBuilder::build`] and [`Session::step`].
    pub fn run(self) -> Result<(RunReport, FaultStats)> {
        self.build()?.run()
    }
}

/// One governed run in progress: the machine, the telemetry chain, and the
/// governor, advanced one 10 ms control interval per [`step`](Session::step).
///
/// Degradation semantics under injected faults, per interval:
///
/// * dropped power sample → the governor sees `power: None`;
/// * stuck power sample → the governor sees the last delivered value;
/// * dropped thermal read → the governor sees `temperature: None`;
/// * missed PMC read → the governor sees a rate-extrapolated stale sample
///   ([`CounterSample::is_fresh`] is false) and the driver integrates the
///   gap on its next successful read;
/// * ignored p-state write → retried in-interval up to the configured
///   limit; on exhaustion the error is absorbed (counted in
///   [`FaultStats::actuation_failures`]) and the machine keeps its p-state —
///   the governor simply tries again next interval;
/// * stalled p-state write → lands `stall_intervals` intervals later unless
///   a subsequent intact write supersedes it.
///
/// The trace always records the DAQ's raw sample (the experimenter's
/// logging path), not the governor's possibly-corrupted view.
///
/// [`CounterSample::is_fresh`]: aapm_telemetry::pmc::CounterSample::is_fresh
///
/// # Examples
///
/// ```
/// use aapm::baselines::Unconstrained;
/// use aapm::runtime::Session;
/// use aapm_platform::config::MachineConfig;
/// use aapm_platform::phase::PhaseDescriptor;
/// use aapm_platform::program::PhaseProgram;
///
/// let phase = PhaseDescriptor::builder("w").instructions(50_000_000).build()?;
/// let mut governor = Unconstrained::new();
/// let (report, faults) = Session::builder(
///     MachineConfig::pentium_m_755(1),
///     PhaseProgram::from_phase(phase),
/// )
/// .governor(&mut governor)
/// .run()?;
/// assert!(report.completed);
/// assert_eq!(faults.power_dropouts, 0);
/// # Ok::<(), aapm_platform::error::PlatformError>(())
/// ```
#[must_use = "a Session does nothing until stepped or run"]
pub struct Session<'a> {
    config: SimulationConfig,
    governor: GovernorSlot<'a>,
    source: Box<dyn WorkloadSource>,
    open_loop: bool,
    /// Scratch buffer for each interval's arrivals (reused across steps).
    arrivals: Vec<Request>,
    /// The queue sample drained after the most recent tick (serve mode).
    queue_sample: Option<QueueSample>,
    machine: Machine,
    daq: PowerDaq,
    pmc: PmcDriver,
    thermal: ThermalSensor,
    actuator: FaultyActuator,
    trace: RunTrace,
    plan: FaultPlan,
    stats: FaultStats,
    metrics: Metrics,
    table: PStateTable,
    workload: String,
    pending: Vec<ScheduledCommand>,
    next_command: usize,
    /// The most recent power sample actually delivered to the governor;
    /// a stuck reading repeats this value.
    last_delivered: Option<PowerSample>,
    samples: usize,
}

impl<'a> Session<'a> {
    /// Starts configuring a run of `source` on `machine_config`.
    ///
    /// Any [`WorkloadSource`] works: a
    /// [`PhaseProgram`](aapm_platform::program::PhaseProgram) runs as a
    /// batch job to completion, an open-loop request workload (e.g.
    /// `aapm_workloads::RequestWorkload`) runs as a server until the
    /// sample cap.
    pub fn builder(
        machine_config: MachineConfig,
        source: impl WorkloadSource + 'static,
    ) -> SessionBuilder<'a> {
        SessionBuilder {
            machine_config,
            source: Box::new(source),
            config: SimulationConfig::default(),
            governor: None,
            commands: Vec::new(),
            fault_windows: Vec::new(),
            metrics: Metrics::disabled(),
        }
    }

    /// Executes one control interval: delivers due commands, ticks the
    /// machine, samples the telemetry chain, asks the governor for the
    /// next p-state and throttle, and actuates them.
    ///
    /// Scheduled-command delivery contract: commands are stable-sorted by
    /// `at`, so two commands with the same `at` are delivered in their
    /// submission order (the later one in the slice wins any conflict). A
    /// command is delivered at the start of the first control interval
    /// whose start time is ≥ `at`; in particular a command at `t = 0` (or
    /// any non-positive time) reaches the governor before the very first
    /// sample is decided.
    ///
    /// Calling `step` after the session finished is a no-op returning
    /// [`SessionStatus::Finished`].
    ///
    /// # Errors
    ///
    /// Propagates real platform errors (invalid p-states from a
    /// misbehaving governor). Injected actuation losses are absorbed into
    /// the session's [`FaultStats`] instead.
    pub fn step(&mut self) -> Result<SessionStatus> {
        if self.machine.finished() || self.samples >= self.config.max_samples {
            return Ok(SessionStatus::Finished);
        }

        // Deliver any commands due at or before this interval's start.
        while self.next_command < self.pending.len()
            && self.pending[self.next_command].at <= self.machine.elapsed()
        {
            let command = self.pending[self.next_command].command;
            self.governor.get_mut().command(command);
            self.metrics.inc("runtime.commands_delivered");
            self.metrics.event(
                self.machine.elapsed(),
                EventKind::CommandDelivered { command: command_name(command) },
            );
            self.next_command += 1;
        }

        // Open-loop sources feed the machine's queue with this interval's
        // arrivals before it ticks. Windows abut exactly ([start, end)
        // with end = next start), so every arrival is offered once.
        if self.open_loop {
            let start = self.machine.elapsed();
            let end = start + self.config.sample_interval;
            self.arrivals.clear();
            self.source.arrivals_into(start, end, &mut self.arrivals);
            for request in self.arrivals.drain(..) {
                self.machine.offer_request(request);
            }
        }

        let interval_pstate = self.machine.pstate();
        self.machine.tick(self.config.sample_interval);
        let now = self.machine.elapsed();
        self.queue_sample = self.machine.take_queue_sample();
        if let Some(sample) = &self.queue_sample {
            self.metrics.gauge("queue.depth", sample.depth as f64);
            for &sojourn in &sample.sojourns {
                self.metrics.observe("request.sojourn_s", sojourn);
            }
        }
        let faults = self.plan.next_interval(now);

        // The DAQ and thermal sensor are sampled unconditionally so their
        // noise streams stay aligned with a fault-free run; faults corrupt
        // only what the governor is shown.
        let power = self.daq.sample(&self.machine);
        let temperature = self.thermal.read(&self.machine);
        let counters = if faults.pmc_missed {
            self.stats.pmc_missed += 1;
            self.metrics.inc("fault.pmc_missed");
            self.metrics.event(now, EventKind::FaultInjected { kind: "pmc_missed" });
            self.pmc.sample_missed(&self.machine, self.config.sample_interval)
        } else {
            self.pmc.sample(&self.machine)
        };

        let shown_power: Option<PowerSample> = match faults.power {
            PowerFault::Intact => {
                self.last_delivered = Some(power);
                Some(power)
            }
            PowerFault::Dropped => {
                self.stats.power_dropouts += 1;
                self.metrics.inc("fault.power_dropped");
                self.metrics.event(now, EventKind::FaultInjected { kind: "power_dropped" });
                None
            }
            PowerFault::Stuck => match self.last_delivered {
                // Stuck at the last delivered value, stamped with the
                // current interval.
                Some(prev) => {
                    self.stats.power_stuck += 1;
                    self.metrics.inc("fault.power_stuck");
                    self.metrics.event(now, EventKind::FaultInjected { kind: "power_stuck" });
                    Some(PowerSample {
                        start: power.start,
                        end: power.end,
                        power: prev.power,
                        true_power: power.true_power,
                    })
                }
                // Nothing to be stuck at yet: indistinguishable from a
                // normal delivery.
                None => {
                    self.last_delivered = Some(power);
                    Some(power)
                }
            },
        };
        let shown_temperature = if faults.thermal_dropped {
            self.stats.thermal_dropouts += 1;
            self.metrics.inc("fault.thermal_dropped");
            self.metrics.event(now, EventKind::FaultInjected { kind: "thermal_dropped" });
            None
        } else {
            Some(temperature)
        };

        let ctx = SampleContext {
            counters: &counters,
            power: shown_power.as_ref(),
            temperature: shown_temperature,
            current: interval_pstate,
            table: &self.table,
            queue: self.queue_sample.as_ref(),
        };
        let governor = self.governor.get_mut();
        let target = governor.decide(&ctx);
        let throttle = governor.throttle_decision(&ctx);
        self.metrics.inc("runtime.intervals");
        if target != interval_pstate {
            self.metrics.inc("runtime.pstate_changes");
            self.metrics.event(
                now,
                EventKind::Decision { from: interval_pstate.index(), to: target.index() },
            );
        }

        self.actuator.step(&mut self.machine)?;
        match self.actuator.write(
            &mut self.machine,
            target,
            faults.actuation,
            &mut self.plan,
            now,
            &mut self.stats,
            &self.metrics,
        ) {
            Ok(()) => {}
            Err(PlatformError::ActuationFailed { attempts, .. }) => {
                // Injected loss: the machine keeps its p-state and the
                // governor retries from fresh telemetry next interval.
                self.stats.actuation_failures += 1;
                self.metrics.inc("actuator.failures");
                self.metrics.event(now, EventKind::ActuationFailed { attempts: attempts as u64 });
            }
            Err(other) => return Err(other),
        }
        self.machine.set_throttle(throttle);

        self.trace.push_sample(&power, interval_pstate, counters.ipc(), counters.dpc());
        self.samples += 1;

        Ok(if self.machine.finished() || self.samples >= self.config.max_samples {
            SessionStatus::Finished
        } else {
            SessionStatus::Running
        })
    }

    /// Steps until finished, then produces the report.
    ///
    /// # Errors
    ///
    /// As [`Session::step`].
    pub fn run(mut self) -> Result<(RunReport, FaultStats)> {
        while self.step()?.is_running() {}
        Ok(self.finish())
    }

    /// Consumes the session and produces the run report plus the fault
    /// statistics accumulated so far.
    pub fn finish(self) -> (RunReport, FaultStats) {
        let completed = self.machine.finished();
        let execution_time =
            self.machine.completion_time().unwrap_or_else(|| self.machine.elapsed());
        let requests = self.machine.queue().map(|queue| {
            let done = queue.completed();
            RequestSummary {
                arrived: queue.arrived(),
                completed: done,
                pending: queue.pending() as u64,
                energy_per_request: if done > 0 {
                    Joules::new(self.machine.true_energy().joules() / done as f64)
                } else {
                    Joules::new(0.0)
                },
                mean_sojourn: if done > 0 {
                    Seconds::new(queue.total_sojourn() / done as f64)
                } else {
                    Seconds::new(0.0)
                },
            }
        });
        if let Some(summary) = &requests {
            self.metrics.gauge("serve.requests_arrived", summary.arrived as f64);
            self.metrics.gauge("serve.requests_completed", summary.completed as f64);
            self.metrics.gauge("serve.requests_pending", summary.pending as f64);
            self.metrics.gauge("serve.energy_per_request_j", summary.energy_per_request.joules());
        }
        let report = RunReport {
            workload: self.workload,
            governor: self.governor.get().name().to_owned(),
            execution_time,
            measured_energy: self.trace.measured_energy(),
            true_energy: self.machine.true_energy(),
            transitions: self.machine.transitions_performed(),
            completed,
            trace: self.trace,
            metrics: self.metrics.snapshot(),
            requests,
        };
        (report, self.stats)
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.machine.elapsed()
    }

    /// The machine's current p-state.
    pub fn pstate(&self) -> PStateId {
        self.machine.pstate()
    }

    /// Control intervals executed so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Whether the program has completed.
    pub fn finished(&self) -> bool {
        self.machine.finished()
    }

    /// The run trace accumulated so far (one record per executed interval).
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// The governor's report name.
    pub fn governor_name(&self) -> &str {
        self.governor.get().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{StaticClock, Unconstrained};
    use crate::governor::GovernorCommand;
    use crate::limits::PowerLimit;
    use crate::pm::PerformanceMaximizer;
    use aapm_models::power_model::PowerModel;
    use aapm_platform::phase::PhaseDescriptor;
    use aapm_platform::program::PhaseProgram;
    use aapm_platform::pstate::PStateId;

    fn program(instructions: u64) -> PhaseProgram {
        let phase = PhaseDescriptor::builder("test-load")
            .instructions(instructions)
            .core_cpi(0.8)
            .decode_ratio(1.2)
            .mispredict_rate(0.0)
            .build()
            .unwrap();
        PhaseProgram::from_phase(phase)
    }

    fn quiet_machine(seed: u64) -> MachineConfig {
        let mut b = MachineConfig::builder();
        b.execution_variation(0.0).seed(seed);
        b.build().unwrap()
    }

    /// Plain run: builder with a borrowed governor, default config.
    fn run_plain(
        governor: &mut dyn Governor,
        machine_config: MachineConfig,
        program: PhaseProgram,
        config: SimulationConfig,
        commands: &[ScheduledCommand],
    ) -> RunReport {
        Session::builder(machine_config, program)
            .config(config)
            .governor(governor)
            .commands(commands)
            .run()
            .unwrap()
            .0
    }

    #[test]
    fn unconstrained_run_completes_at_top_speed() {
        // 1G instructions at CPI 0.8 → 0.4 s at 2 GHz.
        let report = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(1),
            program(1_000_000_000),
            SimulationConfig::default(),
            &[],
        );
        assert!(report.completed);
        assert!((report.execution_time.seconds() - 0.4).abs() < 0.02, "{}", report.execution_time);
        assert!(report.measured_energy.joules() > 0.0);
        assert_eq!(report.governor, "unconstrained");
    }

    #[test]
    fn static_clock_run_is_slower_and_cheaper() {
        let fast = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(1),
            program(1_000_000_000),
            SimulationConfig::default(),
            &[],
        );
        let slow = run_plain(
            &mut StaticClock::new(PStateId::new(0)),
            quiet_machine(1),
            program(1_000_000_000),
            SimulationConfig::default(),
            &[],
        );
        assert!(slow.execution_time > fast.execution_time);
        assert!(slow.true_energy < fast.true_energy);
    }

    #[test]
    fn measured_and_true_energy_agree_with_ideal_daq() {
        let config = SimulationConfig { daq: DaqConfig::ideal(), ..SimulationConfig::default() };
        let report = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(1),
            program(500_000_000),
            config,
            &[],
        );
        let ratio = report.measured_energy.joules() / report.true_energy.joules();
        // The final tick's idle tail is included in measured samples, so
        // allow a small discrepancy.
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn scheduled_command_changes_behaviour_mid_run() {
        // PM with a generous limit, tightened hard at t = 0.2 s.
        let model = PowerModel::paper_table_ii();
        let mut pm = PerformanceMaximizer::new(model, PowerLimit::new(30.0).unwrap());
        let commands = [ScheduledCommand {
            at: Seconds::new(0.2),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(6.0).unwrap()),
        }];
        let config = SimulationConfig::default();
        let report =
            run_plain(&mut pm, quiet_machine(1), program(1_000_000_000), config, &commands);
        assert!(report.completed);
        // Early samples run at the top p-state; after the command the
        // governor must drop several states. The "late" probe sits 50 ms
        // past the command, expressed in control intervals so the test
        // tracks the configured cadence rather than assuming 10 ms.
        let early = &report.trace.records()[..15];
        let late_start = (0.25 / config.sample_interval.seconds()).round() as usize;
        let late = &report.trace.records()[late_start..late_start + 15];
        assert!(early.iter().all(|r| r.pstate == PStateId::new(7)));
        assert!(late.iter().all(|r| r.pstate < PStateId::new(5)), "limit 6 W forces low states");
        // And the run takes longer than unconstrained would.
        assert!(report.execution_time.seconds() > 0.4);
    }

    #[test]
    fn trace_interval_matches_config() {
        let report = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(1),
            program(100_000_000),
            SimulationConfig::default(),
            &[],
        );
        assert_eq!(report.trace.interval(), Seconds::from_millis(10.0));
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn runs_are_reproducible_with_same_seeds() {
        let a = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(9),
            program(300_000_000),
            SimulationConfig::default(),
            &[],
        );
        let b = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(9),
            program(300_000_000),
            SimulationConfig::default(),
            &[],
        );
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.measured_energy, b.measured_energy);
        assert_eq!(a.trace, b.trace);
    }

    /// step() exposes the same run one interval at a time: stepping until
    /// Finished produces the identical trace, and the incremental
    /// accessors track the run.
    #[test]
    fn stepped_session_matches_run_and_exposes_progress() {
        let whole = run_plain(
            &mut Unconstrained::new(),
            quiet_machine(5),
            program(300_000_000),
            SimulationConfig::default(),
            &[],
        );
        let mut governor = Unconstrained::new();
        let mut session = Session::builder(quiet_machine(5), program(300_000_000))
            .governor(&mut governor)
            .build()
            .unwrap();
        assert_eq!(session.samples(), 0);
        assert!(!session.finished());
        assert_eq!(session.governor_name(), "unconstrained");
        let mut steps = 0usize;
        while session.step().unwrap().is_running() {
            steps += 1;
            assert_eq!(session.samples(), steps);
            assert_eq!(session.trace().len(), steps);
        }
        assert!(session.finished());
        // A step after Finished is a no-op.
        let samples_at_finish = session.samples();
        assert_eq!(session.step().unwrap(), SessionStatus::Finished);
        assert_eq!(session.samples(), samples_at_finish);
        let (report, _) = session.finish();
        assert_eq!(report.trace, whole.trace);
        assert_eq!(report.execution_time, whole.execution_time);
    }

    #[test]
    fn builder_without_governor_is_rejected() {
        let result = Session::builder(quiet_machine(1), program(1_000_000)).build();
        assert!(matches!(
            result,
            Err(PlatformError::InvalidConfig { parameter: "governor", .. })
        ));
    }

    #[test]
    fn governor_spec_builds_and_runs() {
        use crate::spec::{GovernorSpec, SpecModels};
        let report = Session::builder(quiet_machine(1), program(200_000_000))
            .governor_spec(&GovernorSpec::Pm { limit_w: 12.5 }, &SpecModels::default())
            .unwrap()
            .run()
            .unwrap()
            .0;
        assert!(report.completed);
        assert_eq!(report.governor, "pm");
    }

    fn limited_pm(watts: f64) -> PerformanceMaximizer {
        PerformanceMaximizer::new(PowerModel::paper_table_ii(), PowerLimit::new(watts).unwrap())
    }

    fn set_limit(at: f64, watts: f64) -> ScheduledCommand {
        ScheduledCommand {
            at: Seconds::new(at),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(watts).unwrap()),
        }
    }

    fn pm_trace(commands: &[ScheduledCommand]) -> RunTrace {
        run_plain(
            &mut limited_pm(30.0),
            quiet_machine(1),
            program(1_000_000_000),
            SimulationConfig::default(),
            commands,
        )
        .trace
    }

    /// Two commands with the same `at`: submission order is preserved, so
    /// the later one in the slice is delivered last and wins.
    #[test]
    fn same_instant_commands_deliver_in_submission_order() {
        let loose_then_tight = pm_trace(&[set_limit(0.2, 30.0), set_limit(0.2, 6.0)]);
        let tight_then_loose = pm_trace(&[set_limit(0.2, 6.0), set_limit(0.2, 30.0)]);
        let probe = (0.3 / 0.01) as usize;
        assert!(
            loose_then_tight.records()[probe].pstate < PStateId::new(5),
            "6 W delivered last must pin low states"
        );
        assert_eq!(
            tight_then_loose.records()[probe].pstate,
            PStateId::new(7),
            "30 W delivered last must restore the top state"
        );
    }

    /// Commands supplied out of order are stable-sorted by `at`, so the
    /// run is identical to one given the same commands pre-sorted.
    #[test]
    fn out_of_order_commands_match_sorted_delivery() {
        let sorted = pm_trace(&[set_limit(0.1, 25.0), set_limit(0.3, 6.0)]);
        let shuffled = pm_trace(&[set_limit(0.3, 6.0), set_limit(0.1, 25.0)]);
        assert_eq!(sorted, shuffled);
    }

    /// A command at t = 0 reaches the governor before the first decision,
    /// so the second interval already runs at the commanded limit.
    #[test]
    fn command_at_time_zero_lands_before_first_decision() {
        let unlimited = pm_trace(&[]);
        let capped = pm_trace(&[set_limit(0.0, 6.0)]);
        assert_eq!(unlimited.records()[1].pstate, PStateId::new(7));
        assert!(
            capped.records()[1].pstate < PStateId::new(5),
            "t=0 command must shape the very first decision"
        );
    }

    /// An enabled metrics registry must not perturb the simulation: the
    /// trace is bit-identical with and without it, and the snapshot counts
    /// what actually happened.
    #[test]
    fn metrics_registry_does_not_perturb_the_run() {
        let faults = FaultConfig {
            pmc_missed_rate: 0.05,
            actuation_ignored_rate: 0.05,
            seed: 7,
            ..FaultConfig::default()
        };
        let config = SimulationConfig { faults, ..SimulationConfig::default() };
        let run_once = |metrics: &Metrics| {
            Session::builder(quiet_machine(3), program(500_000_000))
                .config(config)
                .governor_boxed(Box::new(limited_pm(12.0)))
                .commands(&[set_limit(0.1, 8.0)])
                .observer(metrics)
                .run()
                .unwrap()
        };
        let (plain, plain_stats) = run_once(&Metrics::disabled());
        let metrics = Metrics::enabled();
        let (observed, observed_stats) = run_once(&metrics);

        assert_eq!(plain.trace, observed.trace);
        assert_eq!(plain.execution_time, observed.execution_time);
        assert_eq!(plain_stats, observed_stats);
        assert!(plain.metrics.is_empty(), "disabled handle records nothing");

        let snapshot = &observed.metrics;
        assert_eq!(snapshot.counter("runtime.intervals"), observed.trace.len() as u64);
        assert_eq!(snapshot.counter("fault.pmc_missed"), observed_stats.pmc_missed);
        assert_eq!(snapshot.counter("runtime.commands_delivered"), 1);
        assert!(snapshot.counter("runtime.pstate_changes") > 0);
    }

    /// A fixed-rate open-loop source for runtime tests: one 2 M-instruction
    /// request every 2 ms (service ≈ 0.8 ms at the top p-state, so the
    /// queue keeps up at full frequency). The integer cursor makes window
    /// stitching exact: each arrival is emitted in the first window whose
    /// (floating-point) end lies past it, never twice.
    #[derive(Default)]
    struct ScriptedServe {
        next_k: u64,
    }

    impl WorkloadSource for ScriptedServe {
        fn name(&self) -> &str {
            "scripted-serve"
        }

        fn machine(&self, config: MachineConfig) -> Machine {
            let service = PhaseDescriptor::builder("service")
                .instructions(2_000_000)
                .core_cpi(0.8)
                .decode_ratio(1.2)
                .mispredict_rate(0.0)
                .build()
                .unwrap();
            Machine::server(config, service)
        }

        fn arrivals_into(&mut self, _start: Seconds, end: Seconds, out: &mut Vec<Request>) {
            const SPACING: f64 = 0.002;
            loop {
                let t = self.next_k as f64 * SPACING;
                if t >= end.seconds() {
                    break;
                }
                out.push(Request::new(Seconds::new(t), 2_000_000.0));
                self.next_k += 1;
            }
        }

        fn open_loop(&self) -> bool {
            true
        }
    }

    #[test]
    fn serve_session_runs_to_cap_and_reports_request_accounting() {
        let metrics = Metrics::enabled();
        let config = SimulationConfig { max_samples: 100, ..SimulationConfig::default() };
        let (report, _) = Session::builder(quiet_machine(2), ScriptedServe::default())
            .config(config)
            .governor_boxed(Box::new(Unconstrained::new()))
            .observer(&metrics)
            .run()
            .unwrap();
        assert_eq!(report.workload, "scripted-serve");
        assert!(!report.completed, "an open-loop server never finishes");
        assert_eq!(report.trace.len(), 100, "runs to the sample cap");
        let summary = report.requests.expect("serve runs report request accounting");
        // 1 s of arrivals at 500 rps starting at t = 0; whether the t = 1 s
        // arrival lands depends on the floating-point end of the final
        // window, so allow both.
        assert!((500..=501).contains(&summary.arrived), "arrived {}", summary.arrived);
        assert!(summary.completed > 0 && summary.completed <= summary.arrived);
        assert!(summary.energy_per_request.joules() > 0.0);
        assert!(summary.mean_sojourn.seconds() > 0.0);
        // The sojourn histogram has one observation per completion and the
        // end-of-run gauges mirror the summary.
        let sojourns = report.metrics.histogram("request.sojourn_s").unwrap();
        assert_eq!(sojourns.count, summary.completed);
        assert_eq!(
            report.metrics.gauge("serve.requests_arrived"),
            Some(summary.arrived as f64)
        );
        assert_eq!(
            report.metrics.gauge("serve.requests_completed"),
            Some(summary.completed as f64)
        );
        assert_eq!(
            report.metrics.gauge("serve.energy_per_request_j"),
            Some(summary.energy_per_request.joules())
        );
        assert!(report.metrics.gauge("queue.depth").is_some());
    }

    /// Serve sessions show the governor a queue sample every interval;
    /// batch sessions show `None` — same contract as missing power or
    /// thermal telemetry.
    #[test]
    fn governor_sees_queue_sample_only_on_serve_runs() {
        #[derive(Default)]
        struct QueueProbe {
            with_queue: usize,
            without_queue: usize,
        }
        impl Governor for QueueProbe {
            fn name(&self) -> &str {
                "queue-probe"
            }
            fn events(&self) -> Vec<aapm_platform::events::HardwareEvent> {
                Vec::new()
            }
            fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
                match ctx.queue {
                    Some(_) => self.with_queue += 1,
                    None => self.without_queue += 1,
                }
                ctx.current
            }
        }

        let config = SimulationConfig { max_samples: 20, ..SimulationConfig::default() };
        let mut probe = QueueProbe::default();
        Session::builder(quiet_machine(2), ScriptedServe::default())
            .config(config)
            .governor(&mut probe)
            .run()
            .unwrap();
        assert_eq!(probe.with_queue, 20);
        assert_eq!(probe.without_queue, 0);

        let mut probe = QueueProbe::default();
        Session::builder(quiet_machine(2), program(50_000_000))
            .governor(&mut probe)
            .run()
            .unwrap();
        assert_eq!(probe.with_queue, 0);
        assert!(probe.without_queue > 0);
    }

    /// Same seeds, same source → bit-identical serve runs (the trace and
    /// the request accounting both).
    #[test]
    fn serve_runs_are_reproducible_with_same_seeds() {
        let run_once = || {
            let config = SimulationConfig { max_samples: 50, ..SimulationConfig::default() };
            Session::builder(quiet_machine(4), ScriptedServe::default())
                .config(config)
                .governor_boxed(Box::new(Unconstrained::new()))
                .run()
                .unwrap()
                .0
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.true_energy, b.true_energy);
    }

    #[test]
    fn sample_cap_prevents_runaway() {
        let config = SimulationConfig { max_samples: 10, ..SimulationConfig::default() };
        let report = run_plain(
            &mut StaticClock::new(PStateId::new(0)),
            quiet_machine(1),
            program(u64::MAX / 4),
            config,
            &[],
        );
        assert!(!report.completed);
        assert_eq!(report.trace.len(), 10);
    }
}
