//! Constraint types for governors: power limits and performance floors.

use std::fmt;

use aapm_platform::error::PlatformError;
use aapm_platform::units::Watts;

/// An explicit processor power limit (PM's constraint).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PowerLimit(Watts);

impl PowerLimit {
    /// Creates a power limit.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] if `watts` is not a positive
    /// finite value.
    pub fn new(watts: f64) -> Result<Self, PlatformError> {
        if !(watts.is_finite() && watts > 0.0) {
            return Err(PlatformError::InvalidConfig {
                parameter: "power_limit",
                reason: format!("must be positive and finite, got {watts}"),
            });
        }
        Ok(PowerLimit(Watts::new(watts)))
    }

    /// The limit as a power value.
    pub fn watts(self) -> Watts {
        self.0
    }
}

impl fmt::Display for PowerLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "limit {}", self.0)
    }
}

/// A minimum acceptable performance, as a fraction of peak (PS's
/// constraint). The paper evaluates floors of 0.8, 0.6, 0.4 and 0.2.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PerformanceFloor(f64);

impl PerformanceFloor {
    /// Creates a performance floor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] unless `fraction` lies in
    /// `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Self, PlatformError> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(PlatformError::InvalidConfig {
                parameter: "performance_floor",
                reason: format!("must lie in (0, 1], got {fraction}"),
            });
        }
        Ok(PerformanceFloor(fraction))
    }

    /// The floor as a fraction of peak performance.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The maximum tolerable performance reduction (`1 − floor`).
    pub fn max_reduction(self) -> f64 {
        1.0 - self.0
    }
}

impl fmt::Display for PerformanceFloor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "floor {:.0}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_limits_construct() {
        let l = PowerLimit::new(17.5).unwrap();
        assert_eq!(l.watts(), Watts::new(17.5));
        assert!(PowerLimit::new(0.0).is_err());
        assert!(PowerLimit::new(-1.0).is_err());
        assert!(PowerLimit::new(f64::NAN).is_err());
    }

    #[test]
    fn valid_floors_construct() {
        let f = PerformanceFloor::new(0.8).unwrap();
        assert!((f.fraction() - 0.8).abs() < 1e-12);
        assert!((f.max_reduction() - 0.2).abs() < 1e-12);
        assert!(PerformanceFloor::new(1.0).is_ok());
        assert!(PerformanceFloor::new(0.0).is_err());
        assert!(PerformanceFloor::new(1.1).is_err());
    }

    #[test]
    fn displays() {
        assert_eq!(PowerLimit::new(10.5).unwrap().to_string(), "limit 10.500 W");
        assert_eq!(PerformanceFloor::new(0.6).unwrap().to_string(), "floor 60%");
    }
}
