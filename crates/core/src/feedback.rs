//! Measured-power feedback extension to PM (the paper's future-work note).
//!
//! For workloads like `galgel` whose activity falls outside the model's
//! training set, the paper suggests "PM could adapt model coefficients on
//! the fly or scale measured power for p-state changes". [`FeedbackPm`]
//! implements the scaling variant: it tracks the exponentially-weighted
//! ratio of *measured* to *estimated* power at the current p-state, and
//! multiplies every estimate by that correction before comparing against
//! the limit. Workloads the static model underestimates are throttled
//! harder; well-modelled workloads are unaffected.

use aapm_platform::events::HardwareEvent;
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Watts;
use aapm_models::power_model::PowerModel;

use crate::governor::{Governor, GovernorCommand, SampleContext};
use crate::limits::PowerLimit;
use crate::pm::{PerformanceMaximizer, PmConfig};

/// PM with measured-power feedback correction.
#[derive(Debug, Clone)]
pub struct FeedbackPm {
    inner: PerformanceMaximizer,
    /// EWMA of measured/estimated power at the current state.
    correction: f64,
    /// EWMA smoothing factor per 10 ms sample.
    smoothing: f64,
    /// Consecutive raise-agreeing samples (PM's asymmetric policy).
    raise_streak: usize,
    /// Most recent DPC taken from a fresh counter sample.
    last_dpc: Option<f64>,
    /// Consecutive stale counter samples seen.
    stale_streak: usize,
}

impl FeedbackPm {
    /// Creates feedback-PM with the default guardband, raise window, and a
    /// smoothing factor of 0.2 per sample.
    pub fn new(model: PowerModel, limit: PowerLimit) -> Self {
        FeedbackPm {
            inner: PerformanceMaximizer::with_config(model, limit, PmConfig::default()),
            correction: 1.0,
            smoothing: 0.2,
            raise_streak: 0,
            last_dpc: None,
            stale_streak: 0,
        }
    }

    /// The current correction factor (measured / estimated, smoothed).
    pub fn correction(&self) -> f64 {
        self.correction
    }

    fn update_correction(&mut self, ctx: &SampleContext<'_>) {
        let Some(measured) = ctx.power else { return };
        // A stale counter sample pairs an extrapolated DPC with a real
        // measurement; feeding that ratio into the EWMA would corrupt the
        // correction, so hold it until fresh counters return.
        if !ctx.counters.is_fresh() {
            return;
        }
        let dpc = ctx.counters.dpc().unwrap_or(0.0);
        let Ok(estimate) = self.inner.model().estimate(ctx.current, dpc) else { return };
        if estimate.watts() <= 0.1 || measured.power.watts() <= 0.1 {
            return;
        }
        let ratio = (measured.power.watts() / estimate.watts()).clamp(0.5, 2.0);
        self.correction += self.smoothing * (ratio - self.correction);
    }

    /// Corrected estimate at `target`: the static-model estimate scaled by
    /// the observed correction factor (guardband applied by the inner PM).
    pub fn corrected_estimate(
        &self,
        ctx: &SampleContext<'_>,
        dpc: f64,
        target: PStateId,
    ) -> Option<Watts> {
        let raw = self.inner.estimate_at(ctx, dpc, target)?;
        Some(raw * self.correction)
    }
}

impl Governor for FeedbackPm {
    fn name(&self) -> &str {
        "pm-feedback"
    }

    fn events(&self) -> Vec<HardwareEvent> {
        vec![HardwareEvent::InstructionsDecoded]
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        self.update_correction(ctx);
        // Same stale-counter degradation as plain PM: hold the last fresh
        // DPC for a bounded window (lower-only), then fail safe downward.
        let dpc = if ctx.counters.is_fresh() {
            self.stale_streak = 0;
            let dpc = ctx.counters.dpc().unwrap_or(0.0);
            self.last_dpc = Some(dpc);
            dpc
        } else {
            self.stale_streak += 1;
            match self.last_dpc {
                Some(dpc) if self.stale_streak <= self.inner.config().hold_samples => {
                    let candidate = self.stale_candidate(ctx, dpc);
                    if candidate < ctx.current {
                        self.raise_streak = 0;
                        return candidate;
                    }
                    return ctx.current;
                }
                _ => {
                    self.raise_streak = 0;
                    return ctx.table.next_lower(ctx.current).unwrap_or(ctx.table.lowest());
                }
            }
        };
        let limit = self.inner.limit().watts();
        // Same asymmetric control as PM, but on corrected estimates: find
        // the highest state fitting under the limit.
        let mut candidate = ctx.table.lowest();
        for (id, _) in ctx.table.iter_descending() {
            if let Some(estimate) = self.corrected_estimate(ctx, dpc, id) {
                if estimate <= limit {
                    candidate = id;
                    break;
                }
            }
        }
        // Reuse the inner PM's streak bookkeeping by delegating the
        // raise/lower policy: lower immediately, raise only on a full
        // streak. The inner PM's own candidate computation is bypassed.
        self.apply_asymmetric_policy(ctx.current, candidate)
    }

    fn command(&mut self, command: GovernorCommand) {
        self.inner.command(command);
    }
}

impl FeedbackPm {
    /// Highest state fitting under the limit for a held DPC (used only on
    /// stale samples, where raising is forbidden anyway).
    fn stale_candidate(&self, ctx: &SampleContext<'_>, dpc: f64) -> PStateId {
        let limit = self.inner.limit().watts();
        for (id, _) in ctx.table.iter_descending() {
            if let Some(estimate) = self.corrected_estimate(ctx, dpc, id) {
                if estimate <= limit {
                    return id;
                }
            }
        }
        ctx.table.lowest()
    }

    /// PM's lower-immediately / raise-after-streak policy.
    fn apply_asymmetric_policy(&mut self, current: PStateId, candidate: PStateId) -> PStateId {
        // Track the streak locally (the inner PM's streak is private to its
        // own decide path).
        if candidate < current {
            self.raise_streak = 0;
            candidate
        } else if candidate > current {
            self.raise_streak += 1;
            if self.raise_streak >= 10 {
                self.raise_streak = 0;
                candidate
            } else {
                current
            }
        } else {
            self.raise_streak = 0;
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::pstate::PStateTable;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::daq::PowerSample;
    use aapm_telemetry::pmc::CounterSample;

    fn sample(dpc: f64) -> CounterSample {
        let cycles = 20e6;
        CounterSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            cycles,
            counts: vec![(HardwareEvent::InstructionsDecoded, dpc * cycles, true)],
        }
    }

    fn power(watts: f64) -> PowerSample {
        PowerSample {
            start: Seconds::ZERO,
            end: Seconds::from_millis(10.0),
            power: Watts::new(watts),
            true_power: Watts::new(watts),
        }
    }

    #[test]
    fn correction_rises_when_model_underestimates() {
        let table = PStateTable::pentium_m_755();
        let mut g = FeedbackPm::new(PowerModel::paper_table_ii(), PowerLimit::new(17.5).unwrap());
        // Model at P7, DPC 1.0 → 15.04 W; measured 18 W → ratio ≈ 1.2.
        let s = sample(1.0);
        let p = power(18.0);
        for _ in 0..50 {
            let ctx = SampleContext {
                counters: &s,
                power: Some(&p), temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            g.decide(&ctx);
        }
        assert!(g.correction() > 1.15, "correction {} should approach 1.2", g.correction());
    }

    #[test]
    fn underestimated_workload_gets_throttled_harder_than_plain_pm() {
        let table = PStateTable::pentium_m_755();
        let mut g = FeedbackPm::new(PowerModel::paper_table_ii(), PowerLimit::new(15.5).unwrap());
        let s = sample(1.0);
        let hot = power(18.0);
        // Warm the correction up, then check the decision.
        let mut chosen = PStateId::new(7);
        for _ in 0..50 {
            let ctx = SampleContext {
                counters: &s,
                power: Some(&hot), temperature: None,
                current: chosen,
                table: &table,
                queue: None,
            };
            chosen = g.decide(&ctx);
        }
        // Plain PM with the same model would keep P7 (est 15.04+0.5 ≤ 15.5
        // is false… est 15.54 > 15.5 → P6). Feedback must be at least as low.
        assert!(chosen < PStateId::new(7), "feedback PM must throttle, chose {chosen}");
    }

    #[test]
    fn well_modelled_workload_keeps_correction_near_one() {
        let table = PStateTable::pentium_m_755();
        let mut g = FeedbackPm::new(PowerModel::paper_table_ii(), PowerLimit::new(30.0).unwrap());
        let s = sample(1.0);
        let accurate = power(15.04); // exactly the model estimate at P7
        for _ in 0..50 {
            let ctx = SampleContext {
                counters: &s,
                power: Some(&accurate), temperature: None,
                current: PStateId::new(7),
                table: &table,
                queue: None,
            };
            g.decide(&ctx);
        }
        assert!((g.correction() - 1.0).abs() < 0.05, "correction {}", g.correction());
    }

    #[test]
    fn missing_power_sample_leaves_correction_unchanged() {
        let table = PStateTable::pentium_m_755();
        let mut g = FeedbackPm::new(PowerModel::paper_table_ii(), PowerLimit::new(17.5).unwrap());
        let s = sample(1.0);
        let ctx = SampleContext { counters: &s, power: None, temperature: None, current: PStateId::new(7), table: &table, queue: None };
        g.decide(&ctx);
        assert_eq!(g.correction(), 1.0);
    }
}
