//! The discrete-event fleet engine must be **byte-identical** to naive
//! lockstep stepping when driven by the real cluster-governed PM
//! controller — p-state actuations, cap reallocations, violation
//! metering and all. This is the end-to-end determinism pin for the
//! fleet layer; the engine-only equivalence (no-op controller) lives in
//! `aapm-platform`'s `fleet` module tests.

use aapm::cluster::{BudgetTree, ClusterGovernor, FleetPmController, NodeSpec, RackSpec};
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::fleet::{CohortMode, Fleet};
use aapm_platform::machine::Machine;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateTable;
use aapm_platform::units::Seconds;

fn cpu_machine(seed: u64, instructions: u64) -> Machine {
    let phase = PhaseDescriptor::builder("cpu-heavy")
        .instructions(instructions)
        .core_cpi(0.7)
        .build()
        .unwrap();
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

fn mem_machine(seed: u64, instructions: u64) -> Machine {
    let phase = PhaseDescriptor::builder("mem-bound")
        .instructions(instructions)
        .core_cpi(1.1)
        .mem_fraction(0.5)
        .l1_mpi(0.04)
        .l2_mpi(0.005)
        .overlap(0.3)
        .build()
        .unwrap();
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

/// Two governed cohorts at different cadences (one lane finishing
/// mid-run) plus a fast-forward cohort — 9 nodes total.
fn build_fleet() -> Fleet {
    let mut fleet = Fleet::new(Seconds::from_millis(10.0));
    fleet
        .add_cohort(
            vec![
                cpu_machine(11, 30_000_000_000),
                cpu_machine(12, 28_000_000_000),
                cpu_machine(13, 26_000_000_000),
                cpu_machine(14, 32_000_000_000),
            ],
            CohortMode::Governed { cadence_ticks: 10 },
        )
        .unwrap();
    fleet
        .add_cohort(
            vec![
                mem_machine(21, 20_000_000_000),
                mem_machine(22, 18_000_000_000),
                // Finishes around one simulated second: exercises the
                // finished-node full-slack headroom path.
                mem_machine(23, 1_500_000_000),
            ],
            CohortMode::Governed { cadence_ticks: 25 },
        )
        .unwrap();
    fleet
        .add_cohort(
            vec![cpu_machine(31, 40_000_000_000), cpu_machine(32, 120_000_000)],
            CohortMode::FastForward,
        )
        .unwrap();
    fleet
}

fn build_controller() -> FleetPmController {
    let node = NodeSpec { floor_w: 6.0, ceiling_w: 24.5 };
    let racks = vec![
        RackSpec { ceiling_w: 50.0, nodes: vec![node; 4] },
        RackSpec { ceiling_w: 45.0, nodes: vec![node; 5] },
    ];
    let tree = BudgetTree::new(80.0, &racks).unwrap();
    let governor = ClusterGovernor::with_reserve(tree, 0.5).unwrap();
    FleetPmController::hierarchical(
        PStateTable::pentium_m_755(),
        &PowerModel::paper_table_ii(),
        governor,
    )
    .unwrap()
}

/// Everything observable about one node, as exact bits.
fn node_state(fleet: &Fleet) -> Vec<(u64, u64, Vec<u64>, Option<u64>, usize)> {
    use aapm_platform::events::HardwareEvent;
    let mut out = Vec::new();
    for cohort in 0..fleet.cohort_count() {
        for lane in 0..fleet.lanes(cohort) {
            let machine = fleet.machine(cohort, lane);
            let snapshot = fleet.counter_snapshot(cohort, lane);
            let counters: Vec<u64> =
                HardwareEvent::ALL.iter().map(|&e| snapshot.get(e).to_bits()).collect();
            out.push((
                fleet.energy(cohort, lane).joules().to_bits(),
                fleet.elapsed(cohort, lane).seconds().to_bits(),
                counters,
                machine.completion_time().map(|t| t.seconds().to_bits()),
                machine.pstate().index(),
            ));
        }
    }
    out
}

#[test]
fn des_fleet_is_byte_identical_to_naive_lockstep_under_cluster_control() {
    const HORIZON_TICKS: u64 = 600; // 6 simulated seconds
    const GOVERNOR_EVERY: u64 = 100; // cluster reallocation each second

    let mut des_fleet = build_fleet();
    let mut des_ctl = build_controller();
    des_fleet.run_des(HORIZON_TICKS, GOVERNOR_EVERY, &mut des_ctl).unwrap();

    let mut naive_fleet = build_fleet();
    let mut naive_ctl = build_controller();
    naive_fleet.run_lockstep(HORIZON_TICKS, GOVERNOR_EVERY, &mut naive_ctl).unwrap();

    // The run must have actually exercised the control stack.
    assert!(des_ctl.windows() > 0, "PM windows were metered");
    let cluster = des_ctl.cluster().expect("hierarchical controller");
    assert_eq!(cluster.reallocations(), HORIZON_TICKS / GOVERNOR_EVERY);
    cluster.tree().assert_invariants();

    // Byte-identical machine state across every node...
    assert_eq!(node_state(&des_fleet), node_state(&naive_fleet));
    // ...and byte-identical controller state.
    let des_caps: Vec<u64> = des_ctl.caps_w().iter().map(|c| c.to_bits()).collect();
    let naive_caps: Vec<u64> = naive_ctl.caps_w().iter().map(|c| c.to_bits()).collect();
    assert_eq!(des_caps, naive_caps);
    assert_eq!(des_ctl.windows(), naive_ctl.windows());
    assert_eq!(
        des_ctl.cap_violation_fraction().to_bits(),
        naive_ctl.cap_violation_fraction().to_bits()
    );
    assert_eq!(
        des_ctl.cluster().unwrap().reallocations(),
        naive_ctl.cluster().unwrap().reallocations()
    );
}

#[test]
fn cluster_control_actually_moves_caps() {
    // Sanity against a vacuous determinism pin: with a mixed fleet the
    // governor's reallocation must shift at least one cap away from the
    // initial fair split.
    let mut fleet = build_fleet();
    let mut ctl = build_controller();
    let initial: Vec<f64> = ctl.caps_w().to_vec();
    fleet.run_des(600, 100, &mut ctl).unwrap();
    let moved = ctl.caps_w().iter().zip(&initial).any(|(a, b)| (a - b).abs() > 1e-6);
    assert!(moved, "reallocation never moved a cap: {:?}", ctl.caps_w());
}
