//! Shared fixtures for the experiment tests.
//!
//! Training the models and computing the PS sweep are the two expensive
//! fixtures; they are built once per test process and shared.

#![cfg(test)]

use std::sync::OnceLock;

use crate::context::ExperimentContext;
use crate::pool::Pool;
use crate::ps_sweep::{self, PsSweep};

static CTX: OnceLock<ExperimentContext> = OnceLock::new();
static SWEEP: OnceLock<PsSweep> = OnceLock::new();
static POOL: OnceLock<Pool> = OnceLock::new();

/// The shared trained context.
pub fn test_ctx() -> &'static ExperimentContext {
    CTX.get_or_init(|| ExperimentContext::train().expect("training succeeds"))
}

/// The shared job pool (modestly parallel so tests exercise the fan-out).
pub fn test_pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(2))
}

/// The shared PS sweep.
pub fn test_sweep() -> &'static PsSweep {
    SWEEP.get_or_init(|| ps_sweep::compute(test_ctx(), test_pool()).expect("sweep succeeds"))
}
