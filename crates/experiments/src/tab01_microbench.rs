//! Table I — the MS-Loops microbenchmarks and their characterization.
//!
//! Reproduces the paper's Table I (loop roster and descriptions) and
//! extends it with the measured characterization of each loop × footprint:
//! demand miss rates from the cache simulation and the derived phase
//! parameters the training pipeline feeds on.

use aapm_platform::error::Result;
use aapm_workloads::loops::MicroLoop;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::table::{f3, TextTable};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates characterization errors.
pub fn run(ctx: &ExperimentContext, _pool: &Pool) -> Result<ExperimentOutput> {
    let mut out =
        ExperimentOutput::new("tab1", "MS-Loops microbenchmarks (paper Table I) + characterization");

    let mut roster = TextTable::new(vec!["loop", "description"]);
    for l in MicroLoop::ALL {
        roster.row(vec![l.name().into(), l.description().into()]);
    }
    out.table("roster", roster);

    let mut characterized = TextTable::new(vec![
        "point",
        "l1_miss_per_access",
        "l2_miss_per_access",
        "l1_mpi",
        "l2_mpi",
        "prefetch_per_inst",
    ]);
    for point in ctx.characterized() {
        characterized.row(vec![
            point.name(),
            f3(point.measurements.l1_miss_rate()),
            f3(point.measurements.l2_miss_rate()),
            format!("{:.4}", point.phase.l1_mpi()),
            format!("{:.4}", point.phase.l2_mpi()),
            format!("{:.4}", point.phase.prefetch_per_inst()),
        ]);
    }
    out.table("characterization", characterized);
    out.note(
        "12 training points (4 loops × 3 footprints); miss rates measured by \
         driving each loop's address stream through the simulated cache \
         hierarchy with the hardware prefetcher enabled",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn roster_and_characterization_complete() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        assert_eq!(out.tables[0].1.len(), 4, "four loops");
        assert_eq!(out.tables[1].1.len(), 12, "twelve training points");
    }
}
