//! Table III — measured power vs frequency for the worst-case workload.
//!
//! The L2-resident FMA loop is the highest-power MS-Loops member and serves
//! as the proxy for "realistic worst-case" power: the basis for choosing
//! static-clocking frequencies (Table IV).

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::worst_case_power_curve;
use crate::table::{f3, TextTable};

/// The paper's Table III values (frequency MHz → measured watts).
pub const PAPER_TABLE_III: [(u32, f64); 8] = [
    (600, 3.86),
    (800, 5.21),
    (1000, 6.56),
    (1200, 8.16),
    (1400, 10.16),
    (1600, 12.46),
    (1800, 15.29),
    (2000, 17.78),
];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "tab3",
        "FMA-256KB measured power vs frequency (paper Table III)",
    );
    let curve = worst_case_power_curve(pool, ctx.table())?;
    let mut table =
        TextTable::new(vec!["freq_mhz", "measured_w", "paper_w", "delta_pct"]);
    let mut worst_delta = 0.0f64;
    for ((freq, watts), (paper_mhz, paper_w)) in curve.iter().zip(PAPER_TABLE_III) {
        assert_eq!(freq.mhz(), paper_mhz, "p-state tables align");
        let delta = (watts.watts() - paper_w) / paper_w;
        worst_delta = worst_delta.max(delta.abs());
        table.row(vec![
            freq.mhz().to_string(),
            f3(watts.watts()),
            f3(paper_w),
            format!("{:+.1}%", delta * 100.0),
        ]);
    }
    out.table("curve", table);
    out.note(format!(
        "largest deviation from the paper's measurements: {:.1}% — the \
         platform's power constants were calibrated against this table",
        worst_delta * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn curve_tracks_paper_within_five_percent() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 8);
        for row in rows {
            let measured: f64 = row[1].parse().unwrap();
            let paper: f64 = row[2].parse().unwrap();
            let delta = (measured - paper).abs() / paper;
            assert!(delta < 0.05, "{} MHz: {measured} vs {paper}", row[0]);
        }
    }
}
