//! Shared experiment context: the trained models and platform constants.
//!
//! Training the models is the expensive preamble of every experiment
//! (characterize 12 loops, run them at 8 p-states, fit). The context does it
//! once and is shared by reference across all experiment modules.

use aapm::spec::SpecModels;
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::power_model::PowerModel;
use aapm_models::training::{
    collect_training_data_from, train_perf_model, train_power_model, PerfFitReport,
    TrainingConfig, TrainingData,
};
use aapm_platform::error::Result;
use aapm_platform::pipeline::MemoryTimings;
use aapm_platform::pstate::PStateTable;
use aapm_workloads::characterize::{training_set, CharacterizedLoop};

/// Trained models plus the platform constants experiments need.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    table: PStateTable,
    timings: MemoryTimings,
    power_model: PowerModel,
    perf_fit: PerfFitReport,
    training: TrainingData,
    characterized: Vec<CharacterizedLoop>,
}

impl ExperimentContext {
    /// Trains the models on the simulated platform (the paper's §III.A
    /// procedure) and captures everything experiments share.
    ///
    /// # Errors
    ///
    /// Propagates platform errors from training.
    pub fn train() -> Result<Self> {
        let table = PStateTable::pentium_m_755();
        // Characterize the 12-point training set once; experiments that
        // need the loops themselves (Table I) reuse it instead of paying
        // for the cache simulation again.
        let characterized = training_set()?;
        let training =
            collect_training_data_from(&TrainingConfig::default(), &table, &characterized)?;
        let power_model = train_power_model(&training)?;
        let perf_fit = train_perf_model(&training);
        Ok(ExperimentContext {
            table,
            timings: MemoryTimings::pentium_m_755(),
            power_model,
            perf_fit,
            training,
            characterized,
        })
    }

    /// The characterized 12-point MS-Loops training set (4 loops × 3
    /// footprints, Table I order).
    pub fn characterized(&self) -> &[CharacterizedLoop] {
        &self.characterized
    }

    /// The platform's p-state table.
    pub fn table(&self) -> &PStateTable {
        &self.table
    }

    /// The platform's memory timings.
    pub fn timings(&self) -> &MemoryTimings {
        &self.timings
    }

    /// The power model trained on this platform (our Table II analogue).
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The trained eq.-3 parameter fit.
    pub fn perf_fit(&self) -> &PerfFitReport {
        &self.perf_fit
    }

    /// A performance model with the *paper's* primary parameters
    /// (threshold 1.21, exponent 0.81) — used by default so the
    /// reproduction exercises the published configuration.
    pub fn perf_model_paper(&self) -> PerfModel {
        PerfModel::new(PerfModelParams::paper())
    }

    /// A performance model with the paper's alternate exponent (0.59).
    pub fn perf_model_alternate(&self) -> PerfModel {
        PerfModel::new(PerfModelParams::paper_alternate())
    }

    /// A performance model with the parameters trained on this platform.
    pub fn perf_model_trained(&self) -> PerfModel {
        PerfModel::new(self.perf_fit.params)
    }

    /// The raw training data (for the Table II experiment's error columns).
    pub fn training(&self) -> &TrainingData {
        &self.training
    }

    /// The model set governor specs are built against in this context:
    /// the *trained* power model plus the paper's primary performance
    /// parameters — the same pair the factory-based experiments always
    /// used, as opposed to [`SpecModels::default`]'s published Table II
    /// coefficients.
    pub fn spec_models(&self) -> SpecModels {
        SpecModels { power: self.power_model.clone(), perf: self.perf_model_paper() }
    }
}
