//! Serve traffic under a tail-latency SLO: `slo-save` vs a static cap
//! (ROADMAP item 2, the serve-traffic refactor's headline experiment).
//!
//! Batch experiments ask "how long did the program take"; an open-loop
//! server never finishes, so the economics invert: requests arrive on the
//! operator's schedule and the metric is **energy per served request** at
//! a bounded sojourn-time tail. Three arms run the same seeded diurnal
//! day — a raised-cosine base load with a 3× lunchtime burst and
//! heavy-tailed per-request demands — on the same machine draws:
//!
//! * **slo-save** — [`SloSave`] holding a p99 sojourn SLO, stepping up on
//!   violation and probing down only after a settle window;
//! * **static-cap** — the frequency a worst-case provisioner would pin
//!   from Table IV at the same power limit; no load awareness at all;
//! * **uncapped** — the top p-state always: the energy ceiling and the
//!   latency floor.
//!
//! Violation minutes are scored by an arm-independent [`SloMeter`] wrapped
//! around every governor (the same windowed-p99 law SloSave uses
//! internally), so the comparison axis cannot depend on which arm is
//! measuring. The headline: slo-save beats the static cap on energy per
//! request at equal or fewer violation minutes, because a static
//! provisioner must hold burst-worthy frequency all day while the SLO
//! governor sinks to the table's lower states through the trough.
//!
//! A second stage scales the family to the PR 9 fleet: a serve rack fed by
//! per-lane reseeded arrival streams next to a memory-bound donor rack
//! under one budget tree. Under the lunchtime spike the hierarchical
//! cluster moves the donors' slack to the serve rack; the uniform-cap arm
//! throttles the servers into a backlog instead. Same datacenter watts,
//! more served requests.

use aapm::baselines::{StaticClock, Unconstrained};
use aapm::cluster::{BudgetTree, ClusterGovernor, FleetPmController, NodeSpec, RackSpec};
use aapm::governor::{Governor, GovernorCommand, SampleContext};
use aapm::limits::PowerLimit;
use aapm::runtime::{Session, SimulationConfig};
use aapm::slo_save::{SloSave, SloSaveConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::error::Result;
use aapm_platform::events::HardwareEvent;
use aapm_platform::fleet::{CohortId, CohortMode, Fleet, FleetController};
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::requests::Request;
use aapm_platform::throttle::ThrottleLevel;
use aapm_platform::units::Seconds;
use aapm_platform::workload::WorkloadSource;
use aapm_platform::Machine;
use aapm_telemetry::metrics::Metrics;
use aapm_telemetry::window::MovingWindow;
use aapm_workloads::requests::RequestWorkload;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{sim_seed, static_frequency_for_limit, worst_case_power_curve, RUN_SEEDS};
use crate::table::{f3, TextTable};

/// The p99 sojourn-time SLO, in milliseconds. Chosen from the bounded
/// Pareto demand tail: the p99 request (~14 M instructions) takes ~10 ms
/// of pure service at the top p-state and ~33 ms at the bottom, so the SLO
/// is comfortable at the top even through the diurnal peak, marginal at
/// the bottom, and decided by queueing in between — the regime a latency
/// governor exists for.
pub const SLO_MS: f64 = 75.0;

/// One compressed diurnal day, seconds (86 400 s scaled by 1/1000).
pub const DAY_S: f64 = 86.4;

/// Control intervals in the day at the 10 ms cadence.
pub const MAX_SAMPLES: usize = 8_640;

/// Diurnal base and peak arrival rates, requests/second.
pub const BASE_RPS: f64 = 40.0;
pub const PEAK_RPS: f64 = 160.0;

/// The lunchtime burst: 3× amplification just before the diurnal peak.
pub const BURST_START_S: f64 = 40.0;
pub const BURST_END_S: f64 = 48.0;
pub const BURST_MULTIPLIER: f64 = 3.0;

/// The slo-save arm's internal target as a fraction of the scored SLO:
/// the governor reacts at 80% of the budget so ordinary control
/// oscillation stays inside the SLO it is scored against.
pub const SLO_GUARDBAND: f64 = 0.8;

/// The static arm's provisioning limit (Table IV style): the highest
/// frequency whose worst-case draw stays under this many watts.
pub const STATIC_LIMIT_W: f64 = 14.5;

/// The seeded day every single-node arm replays (reseeded per run seed).
fn day_workload(seed: u64) -> Result<RequestWorkload> {
    let mut b = RequestWorkload::builder("front-end");
    b.seed(seed)
        .day(Seconds::new(DAY_S))
        .rates(BASE_RPS, PEAK_RPS)
        .burst(Seconds::new(BURST_START_S), Seconds::new(BURST_END_S), BURST_MULTIPLIER);
    b.build()
}

/// An arm-independent violation meter: the same windowed-p99 law as
/// [`SloSave`], wrapped around whichever governor an arm runs, so every
/// arm's violation minutes are scored by identical telemetry. Recording
/// never perturbs the inner decision (the decorator contract of
/// DESIGN.md §9).
pub struct SloMeter {
    inner: Box<dyn Governor>,
    slo_s: f64,
    sojourns: MovingWindow,
    violation_seconds: f64,
}

impl SloMeter {
    /// Wraps `inner`, scoring against `slo`.
    pub fn new(inner: Box<dyn Governor>, slo: Seconds) -> Self {
        SloMeter {
            inner,
            slo_s: slo.seconds(),
            sojourns: MovingWindow::new(256),
            violation_seconds: 0.0,
        }
    }

    /// Simulated minutes the windowed p99 spent over the SLO.
    pub fn violation_minutes(&self) -> f64 {
        self.violation_seconds / 60.0
    }
}

impl Governor for SloMeter {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn events(&self) -> Vec<HardwareEvent> {
        self.inner.events()
    }

    fn decide(&mut self, ctx: &SampleContext<'_>) -> PStateId {
        if let Some(sample) = ctx.queue {
            for &sojourn in &sample.sojourns {
                self.sojourns.push(sojourn);
            }
            if let Some(p99) = self.sojourns.percentile(99.0) {
                // `!(p99 <= slo)` so a NaN-poisoned tail counts against
                // the arm, mirroring SloSave's own violating branch.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(p99 <= self.slo_s) {
                    self.violation_seconds +=
                        (ctx.counters.end - ctx.counters.start).seconds().max(0.0);
                }
            }
        }
        self.inner.decide(ctx)
    }

    fn throttle_decision(&mut self, ctx: &SampleContext<'_>) -> ThrottleLevel {
        self.inner.throttle_decision(ctx)
    }

    fn command(&mut self, command: GovernorCommand) {
        self.inner.command(command);
    }

    fn install_metrics(&mut self, metrics: Metrics) {
        self.inner.install_metrics(metrics);
    }
}

/// One single-node arm of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    SloSave,
    StaticCap(PStateId),
    Uncapped,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::SloSave => "slo-save",
            Arm::StaticCap(_) => "static-cap",
            Arm::Uncapped => "uncapped",
        }
    }

    fn governor(self) -> Result<Box<dyn Governor>> {
        Ok(match self {
            // The governor holds a guardbanded internal target so the p99
            // it reacts to crosses *its* threshold before the scored SLO —
            // the same margin discipline the paper's PM applies to the
            // power limit (§IV.A.2). The window/settle tunables trade a
            // little energy for excursion cost: a short window reacts (and
            // flushes a violating tail) fast, and a long settle probes
            // down rarely, because every failed probe pays seconds of
            // metered violation while the scoring window drains.
            Arm::SloSave => Box::new(SloSave::with_config(
                Seconds::from_millis(SLO_MS * SLO_GUARDBAND),
                SloSaveConfig {
                    window_sojourns: 64,
                    settle_intervals: 100,
                    step_down_margin: 0.5,
                    hold_samples: 50,
                },
            )?),
            Arm::StaticCap(pstate) => Box::new(StaticClock::new(pstate)),
            Arm::Uncapped => Box::new(Unconstrained::new()),
        })
    }
}

/// One (arm × seed) cell's measurements.
#[derive(Debug, Clone)]
struct NodeCell {
    arm: &'static str,
    arrived: u64,
    completed: u64,
    energy_j: f64,
    mean_sojourn_ms: f64,
    violation_minutes: f64,
    transitions: u64,
}

/// A single-node arm's day aggregated over [`RUN_SEEDS`].
#[derive(Debug, Clone)]
pub struct NodeArmStats {
    /// Arm label (`"slo-save"`, `"static-cap"`, `"uncapped"`).
    pub arm: &'static str,
    /// Requests arrived / completed, summed over seeds.
    pub arrived: u64,
    /// Requests completed, summed over seeds.
    pub completed: u64,
    /// True energy, joules, summed over seeds.
    pub energy_j: f64,
    /// Energy per completed request, joules.
    pub energy_per_request_j: f64,
    /// Mean sojourn over completed requests, milliseconds.
    pub mean_sojourn_ms: f64,
    /// Metered violation minutes, summed over seeds.
    pub violation_minutes: f64,
    /// P-state transitions, summed over seeds.
    pub transitions: u64,
}

fn run_node_cell(arm: Arm, table: &PStateTable, seed: u64) -> Result<NodeCell> {
    let machine = {
        let mut b = MachineConfig::builder();
        b.pstates(table.clone()).seed(seed);
        b.build()?
    };
    let sim = SimulationConfig {
        seed: sim_seed(seed),
        max_samples: MAX_SAMPLES,
        ..SimulationConfig::default()
    };
    let mut meter = SloMeter::new(arm.governor()?, Seconds::from_millis(SLO_MS));
    let (report, _faults) = Session::builder(machine, day_workload(seed)?)
        .config(sim)
        .governor(&mut meter)
        .run()?;
    let requests = report.requests.expect("serve runs report request accounting");
    Ok(NodeCell {
        arm: arm.label(),
        arrived: requests.arrived,
        completed: requests.completed,
        energy_j: report.true_energy.joules(),
        mean_sojourn_ms: requests.mean_sojourn.seconds() * 1e3,
        violation_minutes: meter.violation_minutes(),
        transitions: report.transitions,
    })
}

/// Runs the three single-node arms over [`RUN_SEEDS`], fanned over the
/// pool, and aggregates per arm.
///
/// # Errors
///
/// Propagates platform errors.
pub fn measure(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<NodeArmStats>> {
    let curve = worst_case_power_curve(pool, ctx.table())?;
    let static_pstate =
        static_frequency_for_limit(&curve, ctx.table(), PowerLimit::new(STATIC_LIMIT_W)?);
    let arms = [Arm::SloSave, Arm::StaticCap(static_pstate), Arm::Uncapped];

    let cells: Vec<_> = arms
        .iter()
        .flat_map(|&arm| RUN_SEEDS.iter().map(move |&seed| (arm, seed)))
        .map(|(arm, seed)| {
            let table = ctx.table().clone();
            move || run_node_cell(arm, &table, seed)
        })
        .collect();
    let cells = pool.run(cells).into_iter().collect::<Result<Vec<NodeCell>>>()?;

    Ok(arms
        .iter()
        .map(|&arm| {
            let mine: Vec<&NodeCell> = cells.iter().filter(|c| c.arm == arm.label()).collect();
            let arrived = mine.iter().map(|c| c.arrived).sum();
            let completed: u64 = mine.iter().map(|c| c.completed).sum();
            let energy_j: f64 = mine.iter().map(|c| c.energy_j).sum();
            // Seed-weighted mean of per-seed means: every seed completes a
            // comparable count, so the simple completion-weighted mean is
            // what an operator's dashboard would show.
            let sojourn_weighted: f64 =
                mine.iter().map(|c| c.mean_sojourn_ms * c.completed as f64).sum();
            NodeArmStats {
                arm: arm.label(),
                arrived,
                completed,
                energy_j,
                energy_per_request_j: if completed > 0 {
                    energy_j / completed as f64
                } else {
                    0.0
                },
                mean_sojourn_ms: if completed > 0 {
                    sojourn_weighted / completed as f64
                } else {
                    0.0
                },
                violation_minutes: mine.iter().map(|c| c.violation_minutes).sum(),
                transitions: mine.iter().map(|c| c.transitions).sum(),
            }
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Fleet stage: the request family as a PR 9 cluster cohort.
// ---------------------------------------------------------------------------

/// Serve nodes (one rack) and memory-bound donor nodes (one rack).
pub const FLEET_NODES_PER_RACK: usize = 8;
/// Fleet horizon in 10 ms base ticks: one 20 s compressed day.
pub const FLEET_HORIZON_TICKS: u64 = 2_000;
/// Serve/donor cohort step cadence (100 ms windows).
pub const FLEET_CADENCE_TICKS: u64 = 10;
/// Cluster reallocation cadence (once per simulated second).
pub const FLEET_GOVERNOR_EVERY_TICKS: u64 = 100;
/// Datacenter budget: 10 W per node, below the serve rack's burst draw.
pub const FLEET_DATACENTER_W: f64 = 160.0;
/// The fleet day: the whole diurnal cycle compressed into the horizon,
/// with the lunchtime spike at mid-day.
const FLEET_DAY_S: f64 = 20.0;
const FLEET_SPIKE: (f64, f64, f64) = (8.0, 12.0, 3.0);

/// The seeded arrival family the serve rack draws from; each lane runs
/// `base.reseeded(lane_seed)` so streams are independent but the family
/// (diurnal shape, spike, demand tail) is shared.
fn fleet_workload() -> Result<RequestWorkload> {
    let mut b = RequestWorkload::builder("fleet-front-end");
    b.seed(0xF1EE7)
        .day(Seconds::new(FLEET_DAY_S))
        .rates(BASE_RPS, PEAK_RPS)
        .burst(Seconds::new(FLEET_SPIKE.0), Seconds::new(FLEET_SPIKE.1), FLEET_SPIKE.2);
    b.build()
}

fn donor_machine(seed: u64) -> Machine {
    // Memory-bound, ~40 s of work: never finishes inside the horizon and
    // runs well under its cap, so its headroom is the slack the hierarchy
    // can move to the serve rack.
    let phase = PhaseDescriptor::builder("fleet-donor")
        .instructions(20_000_000_000)
        .core_cpi(1.1)
        .mem_fraction(0.5)
        .l1_mpi(0.04)
        .l2_mpi(0.005)
        .overlap(0.3)
        .build()
        .expect("static phase is valid");
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

/// Cohort 0: serve rack. Cohort 1: donor rack.
fn build_serve_fleet(streams: &[RequestWorkload]) -> Result<Fleet> {
    let governed = CohortMode::Governed { cadence_ticks: FLEET_CADENCE_TICKS };
    let mut fleet = Fleet::new(Seconds::from_millis(10.0));
    let servers = streams
        .iter()
        .enumerate()
        .map(|(lane, stream)| stream.machine(MachineConfig::pentium_m_755(500 + lane as u64)))
        .collect();
    fleet.add_cohort(servers, governed)?;
    fleet.add_cohort(
        (0..FLEET_NODES_PER_RACK).map(|i| donor_machine(600 + i as u64)).collect(),
        governed,
    )?;
    Ok(fleet)
}

/// The budget tree matching [`build_serve_fleet`]'s node order.
fn fleet_racks() -> Vec<RackSpec> {
    let node = NodeSpec { floor_w: 6.0, ceiling_w: 24.5 };
    (0..2)
        .map(|_| RackSpec { ceiling_w: 120.0, nodes: vec![node; FLEET_NODES_PER_RACK] })
        .collect()
}

/// Feeds the serve cohort's arrival streams one cadence window ahead of
/// its clock, then delegates every control decision to the wrapped
/// [`FleetPmController`] — the request family rides the PR 9 cluster
/// governor unchanged.
pub struct ServeFeeder {
    inner: FleetPmController,
    serve_cohort: CohortId,
    cadence_ticks: u64,
    streams: Vec<RequestWorkload>,
    fed_ticks: u64,
    scratch: Vec<Request>,
    offered: u64,
}

impl ServeFeeder {
    /// Wraps `inner`; `streams` holds one arrival stream per serve lane.
    pub fn new(inner: FleetPmController, serve_cohort: CohortId, streams: Vec<RequestWorkload>) -> Self {
        ServeFeeder {
            inner,
            serve_cohort,
            cadence_ticks: FLEET_CADENCE_TICKS,
            streams,
            fed_ticks: 0,
            scratch: Vec::new(),
            offered: 0,
        }
    }

    /// Requests offered to the fleet so far (the conservation check's
    /// left-hand side).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &FleetPmController {
        &self.inner
    }

    /// Queues every arrival in `[fed, upto_ticks)` onto its lane. Must run
    /// once for the first window *before* `run_des` (the first cohort step
    /// callback fires after that window is already served).
    pub fn feed(&mut self, fleet: &mut Fleet, upto_ticks: u64) {
        if upto_ticks <= self.fed_ticks {
            return;
        }
        let start = fleet.time_at(self.fed_ticks);
        let end = fleet.time_at(upto_ticks);
        for lane in 0..self.streams.len() {
            self.scratch.clear();
            self.streams[lane].arrivals_into(start, end, &mut self.scratch);
            self.offered += self.scratch.len() as u64;
            for request in self.scratch.drain(..) {
                fleet.offer_request(self.serve_cohort, lane, request);
            }
        }
        self.fed_ticks = upto_ticks;
    }
}

impl FleetController for ServeFeeder {
    fn cohort_stepped(&mut self, fleet: &mut Fleet, cohort: CohortId, now_ticks: u64) -> Result<()> {
        if cohort == self.serve_cohort {
            self.feed(fleet, now_ticks + self.cadence_ticks);
        }
        self.inner.cohort_stepped(fleet, cohort, now_ticks)
    }

    fn governor_tick(&mut self, fleet: &mut Fleet, now_ticks: u64) -> Result<()> {
        self.inner.governor_tick(fleet, now_ticks)
    }
}

/// One fleet arm's day.
#[derive(Debug, Clone)]
pub struct FleetArmStats {
    /// Arm label.
    pub arm: &'static str,
    /// Requests offered by the feeder / arrived at queues (equal by
    /// conservation).
    pub offered: u64,
    /// Requests completed across the serve rack.
    pub completed: u64,
    /// Requests still queued at the horizon.
    pub backlog: u64,
    /// Serve-rack true energy, joules.
    pub serve_energy_j: f64,
    /// Serve-rack energy per completed request, joules.
    pub energy_per_request_j: f64,
    /// Mean sojourn over completed requests, milliseconds.
    pub mean_sojourn_ms: f64,
    /// Cluster reallocations performed.
    pub reallocations: u64,
}

fn run_fleet_arm(arm: &'static str, controller: FleetPmController) -> Result<FleetArmStats> {
    let base = fleet_workload()?;
    let streams: Vec<RequestWorkload> =
        (0..FLEET_NODES_PER_RACK).map(|lane| base.reseeded(1_000 + lane as u64)).collect();
    let mut fleet = build_serve_fleet(&streams)?;
    let mut feeder = ServeFeeder::new(controller, 0, streams);
    feeder.feed(&mut fleet, FLEET_CADENCE_TICKS);
    fleet.run_des(FLEET_HORIZON_TICKS, FLEET_GOVERNOR_EVERY_TICKS, &mut feeder)?;

    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut backlog = 0u64;
    let mut sojourn_s = 0.0f64;
    let mut serve_energy_j = 0.0f64;
    for lane in 0..fleet.lanes(0) {
        let queue = fleet.queue(0, lane).expect("serve lanes expose their queue");
        assert_eq!(
            queue.arrived(),
            queue.completed() + queue.pending() as u64,
            "queue accounting must conserve requests"
        );
        arrived += queue.arrived();
        completed += queue.completed();
        backlog += queue.pending() as u64;
        sojourn_s += queue.total_sojourn();
        serve_energy_j += fleet.energy(0, lane).joules();
    }
    assert_eq!(arrived, feeder.offered(), "every offered request must reach a queue");
    Ok(FleetArmStats {
        arm,
        offered: feeder.offered(),
        completed,
        backlog,
        serve_energy_j,
        energy_per_request_j: if completed > 0 { serve_energy_j / completed as f64 } else { 0.0 },
        mean_sojourn_ms: if completed > 0 { sojourn_s / completed as f64 * 1e3 } else { 0.0 },
        reallocations: feeder
            .inner()
            .cluster()
            .map_or(0, aapm::cluster::ClusterGovernor::reallocations),
    })
}

/// Runs the hierarchical and uniform fleet arms, fanned over the pool.
///
/// # Errors
///
/// Propagates platform errors.
pub fn measure_fleet(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<FleetArmStats>> {
    type ArmBuilder = Box<dyn FnOnce() -> Result<FleetPmController> + Send>;
    let nodes = 2 * FLEET_NODES_PER_RACK;
    let uniform_cap = FLEET_DATACENTER_W / nodes as f64;
    let arms: Vec<(&'static str, ArmBuilder)> = vec![
        ("hierarchical", {
            let table = ctx.table().clone();
            let model = ctx.power_model().clone();
            Box::new(move || {
                let tree = BudgetTree::new(FLEET_DATACENTER_W, &fleet_racks())?;
                let governor = ClusterGovernor::with_reserve(tree, 0.5)?;
                FleetPmController::hierarchical(table, &model, governor)
            })
        }),
        ("uniform", {
            let table = ctx.table().clone();
            let model = ctx.power_model().clone();
            Box::new(move || FleetPmController::uniform(table, &model, vec![uniform_cap; nodes]))
        }),
    ];
    let cells: Vec<_> = arms
        .into_iter()
        .map(|(label, build)| move || run_fleet_arm(label, build()?))
        .collect();
    pool.run(cells).into_iter().collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "serve",
        "Open-loop serve traffic: slo-save vs static cap vs uncapped, plus the fleet spike",
    );

    let node_arms = measure(ctx, pool)?;
    let mut table = TextTable::new(vec![
        "arm",
        "arrived",
        "completed",
        "energy_j",
        "energy_per_request_j",
        "mean_sojourn_ms",
        "violation_minutes",
        "transitions",
    ]);
    for arm in &node_arms {
        table.row(vec![
            arm.arm.into(),
            arm.arrived.to_string(),
            arm.completed.to_string(),
            f3(arm.energy_j),
            f3(arm.energy_per_request_j),
            f3(arm.mean_sojourn_ms),
            f3(arm.violation_minutes),
            arm.transitions.to_string(),
        ]);
    }
    out.table("arms", table);

    let by = |name: &str| node_arms.iter().find(|a| a.arm == name).expect("arm exists");
    let (slo, cap, open) = (by("slo-save"), by("static-cap"), by("uncapped"));
    out.note(format!(
        "over three seeded diurnal days slo-save serves at {:.3} J/request vs \
         the static cap's {:.3} J/request ({:.1}% less energy per request) \
         with {:.2} vs {:.2} SLO-violation minutes; the uncapped floor is \
         {:.3} J/request at {:.2} violation minutes",
        slo.energy_per_request_j,
        cap.energy_per_request_j,
        (1.0 - slo.energy_per_request_j / cap.energy_per_request_j) * 100.0,
        slo.violation_minutes,
        cap.violation_minutes,
        open.energy_per_request_j,
        open.violation_minutes,
    ));

    let fleet_arms = measure_fleet(ctx, pool)?;
    let mut fleet_table = TextTable::new(vec![
        "arm",
        "offered",
        "completed",
        "backlog",
        "serve_energy_j",
        "energy_per_request_j",
        "mean_sojourn_ms",
        "reallocations",
    ]);
    for arm in &fleet_arms {
        fleet_table.row(vec![
            arm.arm.into(),
            arm.offered.to_string(),
            arm.completed.to_string(),
            arm.backlog.to_string(),
            f3(arm.serve_energy_j),
            f3(arm.energy_per_request_j),
            f3(arm.mean_sojourn_ms),
            arm.reallocations.to_string(),
        ]);
    }
    out.table("fleet", fleet_table);

    let fleet_by =
        |name: &str| fleet_arms.iter().find(|a| a.arm == name).expect("fleet arm exists");
    let (hier, unif) = (fleet_by("hierarchical"), fleet_by("uniform"));
    out.note(format!(
        "under the mid-day 3x spike the hierarchical cluster ({} \
         reallocations) completes {} of {} offered requests vs uniform's {} \
         at the same {FLEET_DATACENTER_W:.0} W budget, ending the day with a \
         backlog of {} vs {} requests",
        hier.reallocations,
        hier.completed,
        hier.offered,
        unif.completed,
        hier.backlog,
        unif.backlog,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    /// The tentpole's pinned headline: the SLO governor beats worst-case
    /// static provisioning on energy per request without paying for it in
    /// violation minutes, and the uncapped arm bounds the latency axis.
    #[test]
    fn slo_save_beats_the_static_cap_at_equal_or_fewer_violation_minutes() {
        let arms = measure(test_ctx(), test_pool()).unwrap();
        let by = |name: &str| arms.iter().find(|a| a.arm == name).unwrap();
        let (slo, cap, open) = (by("slo-save"), by("static-cap"), by("uncapped"));
        assert!(
            slo.energy_per_request_j < cap.energy_per_request_j,
            "slo-save {} J/req must beat static-cap {} J/req",
            slo.energy_per_request_j,
            cap.energy_per_request_j
        );
        assert!(
            slo.violation_minutes <= cap.violation_minutes,
            "slo-save {} violation minutes must not exceed static-cap {}",
            slo.violation_minutes,
            cap.violation_minutes
        );
        assert!(
            open.energy_per_request_j >= slo.energy_per_request_j,
            "the uncapped arm is the energy ceiling"
        );
        assert!(slo.transitions > 0, "slo-save must actually exercise DVFS");
        for arm in &arms {
            assert_eq!(arm.arrived, by("slo-save").arrived, "arms replay the same arrival days");
            assert!(arm.completed > 0, "{}: the day must serve traffic", arm.arm);
        }
    }

    /// The fleet stage: the spike moves watts. Conservation is asserted
    /// inside `run_fleet_arm`; here the cluster must actually reallocate
    /// and must not lose to uniform static caps on served requests.
    #[test]
    fn hierarchical_fleet_serves_the_spike_better_than_uniform_caps() {
        let arms = measure_fleet(test_ctx(), test_pool()).unwrap();
        let by = |name: &str| arms.iter().find(|a| a.arm == name).unwrap();
        let (hier, unif) = (by("hierarchical"), by("uniform"));
        assert_eq!(
            hier.reallocations,
            FLEET_HORIZON_TICKS / FLEET_GOVERNOR_EVERY_TICKS,
            "the cluster reallocates every governor tick"
        );
        assert_eq!(unif.reallocations, 0);
        assert_eq!(hier.offered, unif.offered, "both arms replay the same spike");
        assert!(
            hier.completed >= unif.completed,
            "hierarchical {} completions must not lose to uniform {}",
            hier.completed,
            unif.completed
        );
        assert!(
            hier.backlog <= unif.backlog,
            "hierarchical backlog {} must not exceed uniform {}",
            hier.backlog,
            unif.backlog
        );
    }
}
