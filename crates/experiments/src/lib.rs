//! # aapm-experiments — regenerating every table and figure
//!
//! One module per table/figure of the paper's evaluation, plus the prose
//! PM-adherence sweep, the headline-claims summary, and ablations. Each
//! module exposes `run(&ExperimentContext, &Pool) -> Result<ExperimentOutput>`
//! and fans its independent cells over the [`pool`] job pool; the
//! `aapm-experiments` binary and the `figures` bench target drive them.
//!
//! | id | paper content | module |
//! |---|---|---|
//! | fig1 | suite power variation at 2 GHz | [`fig01_power_variation`] |
//! | fig2 | p-state impact on swim/gap/sixtrack | [`fig02_pstate_impact`] |
//! | tab1 | MS-Loops roster + characterization | [`tab01_microbench`] |
//! | tab2 | per-p-state power model | [`tab02_power_model`] |
//! | tab3 | FMA-256K worst-case power curve | [`tab03_worst_case`] |
//! | tab4 | limit → static frequency | [`tab04_static_freq`] |
//! | fig5 | PM trace on ammp | [`fig05_pm_trace`] |
//! | fig6 | suite performance vs limit | [`fig06_perf_vs_limit`] |
//! | fig7 | per-benchmark PM speedup at 17.5 W | [`fig07_pm_speedup`] |
//! | fig8 | PS trace on ammp | [`fig08_ps_trace`] |
//! | fig9 | suite reduction/savings vs floor | [`fig09_ps_suite`] |
//! | fig10 | per-benchmark energy savings | [`fig10_ps_energy`] |
//! | fig11 | per-benchmark perf reduction | [`fig11_ps_perf`] |
//! | pm-adherence | §IV.A.2 limit enforcement | [`pm_adherence`] |
//! | headline | paper-vs-reproduction claims | [`headline`] |
//! | ablation-* | guardband/window/feedback/DBS | [`ablations`] |
//! | ablation-throttle/-thermal | actuator studies | [`ablation_actuators`] |
//! | adaptive | static vs online-refit power model | [`adaptive`] |
//! | fault-matrix | robustness under injected faults | [`fault_matrix`] |
//! | fleet | hierarchical vs uniform fleet budgets | [`fleet`] |
//! | serve | SLO governor vs static cap on open-loop traffic | [`serve`] |

pub mod ablation_actuators;
pub mod ablations;
pub mod adaptive;
pub mod bench_machine;
pub mod context;
pub mod efficiency;
pub mod fault_matrix;
pub mod fig01_power_variation;
pub mod fig02_pstate_impact;
pub mod fig05_pm_trace;
pub mod fig06_perf_vs_limit;
pub mod fig07_pm_speedup;
pub mod fig08_ps_trace;
pub mod fig09_ps_suite;
pub mod fig10_ps_energy;
pub mod fig11_ps_perf;
pub mod fleet;
pub mod headline;
pub mod model_error;
pub mod observe;
pub mod output;
pub mod pm_adherence;
pub mod pool;
pub mod ps_sweep;
pub mod runner;
pub mod serve;
pub mod signatures;
pub mod tab01_microbench;
pub mod tab02_power_model;
pub mod tab03_worst_case;
pub mod tab04_static_freq;
pub mod table;
#[cfg(test)]
mod test_support;

pub use bench_machine::MachineBenchReport;
pub use context::ExperimentContext;
pub use observe::RunObserver;
pub use output::ExperimentOutput;
pub use pool::Pool;

use aapm_platform::error::Result;

/// Ids of all experiments, in presentation order.
pub const ALL_IDS: [&str; 31] = [
    "fig1", "fig2", "tab1", "tab2", "tab3", "tab4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "pm-adherence", "headline", "ablation-guardband", "ablation-window",
    "ablation-feedback", "ablation-dbs", "ablation-throttle", "ablation-thermal", "ablation-deepcap", "ablation-phase", "adaptive", "signatures", "model-error", "efficiency",
    "fault-matrix", "fleet", "serve", "all",
];

/// Runs one experiment by id (`"all"` is handled by callers).
///
/// # Errors
///
/// Propagates platform errors; unknown ids return an `InvalidConfig` error.
pub fn run_by_id(ctx: &ExperimentContext, pool: &Pool, id: &str) -> Result<Vec<ExperimentOutput>> {
    let single = |out: ExperimentOutput| Ok(vec![out]);
    match id {
        "fig1" => single(fig01_power_variation::run(ctx, pool)?),
        "fig2" => single(fig02_pstate_impact::run(ctx, pool)?),
        "tab1" => single(tab01_microbench::run(ctx, pool)?),
        "tab2" => single(tab02_power_model::run(ctx, pool)?),
        "tab3" => single(tab03_worst_case::run(ctx, pool)?),
        "tab4" => single(tab04_static_freq::run(ctx, pool)?),
        "fig5" => single(fig05_pm_trace::run(ctx, pool)?),
        "fig6" => single(fig06_perf_vs_limit::run(ctx, pool)?),
        "fig7" => single(fig07_pm_speedup::run(ctx, pool)?),
        "fig8" => single(fig08_ps_trace::run(ctx, pool)?),
        "fig9" => single(fig09_ps_suite::run(ctx, pool)?),
        "fig10" => single(fig10_ps_energy::run(ctx, pool)?),
        "fig11" => single(fig11_ps_perf::run(ctx, pool)?),
        "pm-adherence" => single(pm_adherence::run(ctx, pool)?),
        "headline" => single(headline::run(ctx, pool)?),
        "ablation-guardband" => single(ablations::guardband(ctx, pool)?),
        "ablation-window" => single(ablations::raise_window(ctx, pool)?),
        "ablation-feedback" => single(ablations::feedback(ctx, pool)?),
        "ablation-dbs" => single(ablations::dbs(ctx, pool)?),
        "ablation-throttle" => single(ablation_actuators::throttle_vs_dvfs(ctx, pool)?),
        "ablation-thermal" => single(ablation_actuators::thermal_envelope(ctx, pool)?),
        "ablation-deepcap" => single(ablation_actuators::deep_caps(ctx, pool)?),
        "ablation-phase" => single(ablation_actuators::phase_pm(ctx, pool)?),
        "adaptive" => single(adaptive::run(ctx, pool)?),
        "signatures" => single(signatures::run(ctx, pool)?),
        "model-error" => single(model_error::run(ctx, pool)?),
        "efficiency" => single(efficiency::run(ctx, pool)?),
        "fault-matrix" => single(fault_matrix::run(ctx, pool)?),
        "fleet" => single(fleet::run(ctx, pool)?),
        "serve" => single(serve::run(ctx, pool)?),
        "all" => run_suite(ctx, pool),
        other => Err(aapm_platform::error::PlatformError::InvalidConfig {
            parameter: "experiment",
            reason: format!("unknown experiment id `{other}`; known: {ALL_IDS:?}"),
        }),
    }
}

/// Experiments that run before the shared PS sweep, in presentation order.
const SUITE_PRE: [&str; 10] =
    ["fig1", "fig2", "tab1", "tab2", "tab3", "tab4", "fig5", "fig6", "fig7", "fig8"];

/// Experiments that run after the sweep-derived figures, in presentation
/// order.
const SUITE_POST: [&str; 15] = [
    "ablation-guardband",
    "ablation-window",
    "ablation-feedback",
    "ablation-dbs",
    "ablation-throttle",
    "ablation-thermal",
    "ablation-deepcap",
    "ablation-phase",
    "adaptive",
    "signatures",
    "model-error",
    "efficiency",
    "fault-matrix",
    "fleet",
    "serve",
];

/// Runs the full suite, fanning whole experiments over the pool while
/// sharing the expensive PS sweep across figures 9–11 and the headline
/// summary.
///
/// Cells are merged in submission order, so the output sequence (and every
/// byte in it) is identical whatever the pool width.
///
/// # Errors
///
/// Propagates the first failing experiment's error.
pub fn run_suite(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<ExperimentOutput>> {
    enum Item {
        Outputs(Vec<ExperimentOutput>),
        Sweep(ps_sweep::PsSweep),
    }
    // First wave: everything that does not need the sweep, plus the sweep
    // itself as the final cell.
    let mut head: Vec<Box<dyn FnOnce() -> Result<Item> + Send>> = Vec::new();
    for id in SUITE_PRE {
        head.push(Box::new(move || run_by_id(ctx, pool, id).map(Item::Outputs)));
    }
    head.push(Box::new(move || ps_sweep::compute(ctx, pool).map(Item::Sweep)));
    let mut items = pool.run(head).into_iter().collect::<Result<Vec<_>>>()?;
    let Some(Item::Sweep(sweep)) = items.pop() else {
        unreachable!("the last first-wave cell is the sweep")
    };
    let mut outputs = Vec::new();
    for item in items {
        match item {
            Item::Outputs(outs) => outputs.extend(outs),
            Item::Sweep(_) => unreachable!("only the last first-wave cell is the sweep"),
        }
    }
    // Sweep-derived figures are pure formatting — no fan-out needed.
    outputs.push(fig09_ps_suite::run_with(&sweep));
    outputs.push(fig10_ps_energy::run_with(&sweep));
    outputs.push(fig11_ps_perf::run_with(&sweep));

    // Second wave: the remaining experiments, with headline borrowing the
    // sweep computed above.
    let sweep_ref = &sweep;
    let mut tail: Vec<Box<dyn FnOnce() -> Result<Vec<ExperimentOutput>> + Send>> = Vec::new();
    tail.push(Box::new(move || run_by_id(ctx, pool, "pm-adherence")));
    tail.push(Box::new(move || {
        headline::run_with(ctx, pool, sweep_ref).map(|out| vec![out])
    }));
    for id in SUITE_POST {
        tail.push(Box::new(move || run_by_id(ctx, pool, id)));
    }
    for outs in pool.run(tail).into_iter().collect::<Result<Vec<_>>>()? {
        outputs.extend(outs);
    }
    Ok(outputs)
}
