//! # aapm-experiments — regenerating every table and figure
//!
//! One module per table/figure of the paper's evaluation, plus the prose
//! PM-adherence sweep, the headline-claims summary, and ablations. Each
//! module exposes `run(&ExperimentContext) -> Result<ExperimentOutput>`;
//! the `aapm-experiments` binary and the `figures` bench target drive them.
//!
//! | id | paper content | module |
//! |---|---|---|
//! | fig1 | suite power variation at 2 GHz | [`fig01_power_variation`] |
//! | fig2 | p-state impact on swim/gap/sixtrack | [`fig02_pstate_impact`] |
//! | tab1 | MS-Loops roster + characterization | [`tab01_microbench`] |
//! | tab2 | per-p-state power model | [`tab02_power_model`] |
//! | tab3 | FMA-256K worst-case power curve | [`tab03_worst_case`] |
//! | tab4 | limit → static frequency | [`tab04_static_freq`] |
//! | fig5 | PM trace on ammp | [`fig05_pm_trace`] |
//! | fig6 | suite performance vs limit | [`fig06_perf_vs_limit`] |
//! | fig7 | per-benchmark PM speedup at 17.5 W | [`fig07_pm_speedup`] |
//! | fig8 | PS trace on ammp | [`fig08_ps_trace`] |
//! | fig9 | suite reduction/savings vs floor | [`fig09_ps_suite`] |
//! | fig10 | per-benchmark energy savings | [`fig10_ps_energy`] |
//! | fig11 | per-benchmark perf reduction | [`fig11_ps_perf`] |
//! | pm-adherence | §IV.A.2 limit enforcement | [`pm_adherence`] |
//! | headline | paper-vs-reproduction claims | [`headline`] |
//! | ablation-* | guardband/window/feedback/DBS | [`ablations`] |
//! | ablation-throttle/-thermal | actuator studies | [`ablation_actuators`] |
//! | fault-matrix | robustness under injected faults | [`fault_matrix`] |

pub mod ablation_actuators;
pub mod ablations;
pub mod context;
pub mod efficiency;
pub mod fault_matrix;
pub mod fig01_power_variation;
pub mod fig02_pstate_impact;
pub mod fig05_pm_trace;
pub mod fig06_perf_vs_limit;
pub mod fig07_pm_speedup;
pub mod fig08_ps_trace;
pub mod fig09_ps_suite;
pub mod fig10_ps_energy;
pub mod fig11_ps_perf;
pub mod headline;
pub mod model_error;
pub mod output;
pub mod pm_adherence;
pub mod ps_sweep;
pub mod runner;
pub mod signatures;
pub mod tab01_microbench;
pub mod tab02_power_model;
pub mod tab03_worst_case;
pub mod tab04_static_freq;
pub mod table;
#[cfg(test)]
mod test_support;

pub use context::ExperimentContext;
pub use output::ExperimentOutput;

use aapm_platform::error::Result;

/// Ids of all experiments, in presentation order.
pub const ALL_IDS: [&str; 28] = [
    "fig1", "fig2", "tab1", "tab2", "tab3", "tab4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "pm-adherence", "headline", "ablation-guardband", "ablation-window",
    "ablation-feedback", "ablation-dbs", "ablation-throttle", "ablation-thermal", "ablation-deepcap", "ablation-phase", "signatures", "model-error", "efficiency", "fault-matrix",
    "all",
];

/// Runs one experiment by id (`"all"` is handled by callers).
///
/// # Errors
///
/// Propagates platform errors; unknown ids return an `InvalidConfig` error.
pub fn run_by_id(ctx: &ExperimentContext, id: &str) -> Result<Vec<ExperimentOutput>> {
    let single = |out: ExperimentOutput| Ok(vec![out]);
    match id {
        "fig1" => single(fig01_power_variation::run(ctx)?),
        "fig2" => single(fig02_pstate_impact::run(ctx)?),
        "tab1" => single(tab01_microbench::run(ctx)?),
        "tab2" => single(tab02_power_model::run(ctx)?),
        "tab3" => single(tab03_worst_case::run(ctx)?),
        "tab4" => single(tab04_static_freq::run(ctx)?),
        "fig5" => single(fig05_pm_trace::run(ctx)?),
        "fig6" => single(fig06_perf_vs_limit::run(ctx)?),
        "fig7" => single(fig07_pm_speedup::run(ctx)?),
        "fig8" => single(fig08_ps_trace::run(ctx)?),
        "fig9" => single(fig09_ps_suite::run(ctx)?),
        "fig10" => single(fig10_ps_energy::run(ctx)?),
        "fig11" => single(fig11_ps_perf::run(ctx)?),
        "pm-adherence" => single(pm_adherence::run(ctx)?),
        "headline" => single(headline::run(ctx)?),
        "ablation-guardband" => single(ablations::guardband(ctx)?),
        "ablation-window" => single(ablations::raise_window(ctx)?),
        "ablation-feedback" => single(ablations::feedback(ctx)?),
        "ablation-dbs" => single(ablations::dbs(ctx)?),
        "ablation-throttle" => single(ablation_actuators::throttle_vs_dvfs(ctx)?),
        "ablation-thermal" => single(ablation_actuators::thermal_envelope(ctx)?),
        "ablation-deepcap" => single(ablation_actuators::deep_caps(ctx)?),
        "ablation-phase" => single(ablation_actuators::phase_pm(ctx)?),
        "signatures" => single(signatures::run(ctx)?),
        "model-error" => single(model_error::run(ctx)?),
        "efficiency" => single(efficiency::run(ctx)?),
        "fault-matrix" => single(fault_matrix::run(ctx)?),
        "all" => {
            // Share the expensive PS sweep across figures 9–11 + headline.
            let mut outputs = Vec::new();
            for id in [
                "fig1", "fig2", "tab1", "tab2", "tab3", "tab4", "fig5", "fig6", "fig7", "fig8",
            ] {
                outputs.extend(run_by_id(ctx, id)?);
            }
            let sweep = ps_sweep::compute(ctx)?;
            outputs.push(fig09_ps_suite::run_with(&sweep));
            outputs.push(fig10_ps_energy::run_with(&sweep));
            outputs.push(fig11_ps_perf::run_with(&sweep));
            outputs.extend(run_by_id(ctx, "pm-adherence")?);
            outputs.push(headline::run_with(ctx, &sweep)?);
            for id in [
                "ablation-guardband",
                "ablation-window",
                "ablation-feedback",
                "ablation-dbs",
                "ablation-throttle",
                "ablation-thermal",
                "ablation-deepcap",
                "ablation-phase",
                "signatures",
                "model-error",
                "efficiency",
                "fault-matrix",
            ] {
                outputs.extend(run_by_id(ctx, id)?);
            }
            Ok(outputs)
        }
        other => Err(aapm_platform::error::PlatformError::InvalidConfig {
            parameter: "experiment",
            reason: format!("unknown experiment id `{other}`; known: {ALL_IDS:?}"),
        }),
    }
}
