//! Plain-text table and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use aapm_experiments::table::TextTable;
///
/// let mut t = TextTable::new(vec!["benchmark", "speedup"]);
/// t.row(vec!["swim".into(), "1.002".into()]);
/// let text = t.render();
/// assert!(text.contains("benchmark"));
/// assert!(text.contains("swim"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with 3 decimal places (the tables' standard precision).
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      "));
        assert!(lines[2].starts_with("xxxxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("aapm-table-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.1925), "19.2%");
    }
}
