//! Shared PowerSave sweep: every benchmark × floor × exponent + bounds.
//!
//! Figures 9, 10 and 11 all consume the same grid of PS runs; this module
//! computes it once. Each benchmark also runs unconstrained (the
//! performance/energy reference) and at 600 MHz (the upper bound on DVFS
//! savings the paper sorts Figures 10/11 by).

use aapm::spec::{GovernorSpec, SpecModels};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::pool::Pool;
use crate::runner::{median_run_spec, ps_floors};

/// Which eq.-3 exponent a PS run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exponent {
    /// The paper's primary fit, 0.81.
    Primary,
    /// The paper's alternate local minimum, 0.59.
    Alternate,
}

impl Exponent {
    /// Both exponents, primary first.
    pub const BOTH: [Exponent; 2] = [Exponent::Primary, Exponent::Alternate];

    /// The numeric exponent value.
    pub fn value(self) -> f64 {
        match self {
            Exponent::Primary => PerfModelParams::paper().exponent,
            Exponent::Alternate => PerfModelParams::paper_alternate().exponent,
        }
    }

    fn model(self) -> PerfModel {
        match self {
            Exponent::Primary => PerfModel::new(PerfModelParams::paper()),
            Exponent::Alternate => PerfModel::new(PerfModelParams::paper_alternate()),
        }
    }
}

/// One (time, energy) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measure {
    /// Execution time in seconds.
    pub time_s: f64,
    /// Measured energy in joules.
    pub energy_j: f64,
}

/// All PS measurements for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkSweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Unconstrained 2 GHz reference.
    pub unconstrained: Measure,
    /// Static 600 MHz bound.
    pub at_600mhz: Measure,
    /// `(exponent, floor, measure)` for every grid point.
    pub ps_runs: Vec<(Exponent, f64, Measure)>,
}

impl BenchmarkSweep {
    /// The PS measure for a grid point.
    pub fn ps(&self, exponent: Exponent, floor: f64) -> &Measure {
        &self
            .ps_runs
            .iter()
            .find(|(e, f, _)| *e == exponent && (*f - floor).abs() < 1e-9)
            .expect("grid point exists")
            .2
    }

    /// Performance reduction vs unconstrained at a grid point.
    pub fn reduction(&self, exponent: Exponent, floor: f64) -> f64 {
        1.0 - self.unconstrained.time_s / self.ps(exponent, floor).time_s
    }

    /// Energy savings vs unconstrained at a grid point.
    pub fn savings(&self, exponent: Exponent, floor: f64) -> f64 {
        1.0 - self.ps(exponent, floor).energy_j / self.unconstrained.energy_j
    }

    /// Maximum possible DVFS savings (600 MHz) vs unconstrained.
    pub fn max_savings(&self) -> f64 {
        1.0 - self.at_600mhz.energy_j / self.unconstrained.energy_j
    }

    /// Maximum performance reduction (600 MHz) vs unconstrained.
    pub fn max_reduction(&self) -> f64 {
        1.0 - self.unconstrained.time_s / self.at_600mhz.time_s
    }
}

/// The full sweep over the suite.
#[derive(Debug, Clone)]
pub struct PsSweep {
    /// Per-benchmark measurements.
    pub benchmarks: Vec<BenchmarkSweep>,
}

impl PsSweep {
    /// Suite-level performance reduction at a grid point (total-time based,
    /// as in the paper's Figure 9).
    pub fn suite_reduction(&self, exponent: Exponent, floor: f64) -> f64 {
        let t_ref: f64 = self.benchmarks.iter().map(|b| b.unconstrained.time_s).sum();
        let t_ps: f64 = self.benchmarks.iter().map(|b| b.ps(exponent, floor).time_s).sum();
        1.0 - t_ref / t_ps
    }

    /// Suite-level energy savings at a grid point.
    pub fn suite_savings(&self, exponent: Exponent, floor: f64) -> f64 {
        let e_ref: f64 = self.benchmarks.iter().map(|b| b.unconstrained.energy_j).sum();
        let e_ps: f64 = self.benchmarks.iter().map(|b| b.ps(exponent, floor).energy_j).sum();
        1.0 - e_ps / e_ref
    }

    /// One benchmark's sweep, by name.
    pub fn benchmark(&self, name: &str) -> Option<&BenchmarkSweep> {
        self.benchmarks.iter().find(|b| b.benchmark == name)
    }
}

fn measure_of(report: &aapm::report::RunReport) -> Measure {
    Measure {
        time_s: report.execution_time.seconds(),
        energy_j: report.measured_energy.joules(),
    }
}

/// Computes the full sweep.
///
/// # Errors
///
/// Propagates platform errors.
pub fn compute(ctx: &ExperimentContext, pool: &Pool) -> Result<PsSweep> {
    let models = ctx.spec_models();
    let models_ref = &models;
    // One cell per benchmark; each cell runs its whole 2+8-point grid so
    // the merged sweep keeps the suite's benchmark order.
    let cells: Vec<_> = spec::suite()
        .into_iter()
        .map(|bench| {
            move || -> Result<BenchmarkSweep> {
                let unconstrained = measure_of(&median_run_spec(
                    pool,
                    &GovernorSpec::Unconstrained,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?);
                let low = GovernorSpec::StaticClock { pstate: ctx.table().lowest().index() };
                let at_600mhz = measure_of(&median_run_spec(
                    pool,
                    &low,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?);
                let mut ps_runs = Vec::new();
                for exponent in Exponent::BOTH {
                    // The exponent under test rides in through the model
                    // set; the spec itself stays the plain PS entry.
                    let exp_models =
                        SpecModels { power: models_ref.power.clone(), perf: exponent.model() };
                    for floor in ps_floors() {
                        let ps = GovernorSpec::Ps { floor };
                        let report = median_run_spec(
                            pool,
                            &ps,
                            &exp_models,
                            bench.program(),
                            ctx.table(),
                            &[],
                        )?;
                        ps_runs.push((exponent, floor, measure_of(&report)));
                    }
                }
                Ok(BenchmarkSweep {
                    benchmark: bench.name().to_owned(),
                    unconstrained,
                    at_600mhz,
                    ps_runs,
                })
            }
        })
        .collect();
    let benchmarks = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    Ok(PsSweep { benchmarks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_sweep;

    #[test]
    fn sweep_covers_grid() {
        let sweep = test_sweep();
        assert_eq!(sweep.benchmarks.len(), 26);
        for b in &sweep.benchmarks {
            assert_eq!(b.ps_runs.len(), 8, "{}: 2 exponents × 4 floors", b.benchmark);
            assert!(b.unconstrained.time_s > 0.0);
            assert!(b.at_600mhz.time_s > b.unconstrained.time_s);
        }
    }

    #[test]
    fn savings_bounded_by_600mhz_bound() {
        let sweep = test_sweep();
        for b in &sweep.benchmarks {
            for exponent in Exponent::BOTH {
                for floor in [0.8, 0.6, 0.4, 0.2] {
                    let s = b.savings(exponent, floor);
                    assert!(
                        s <= b.max_savings() + 0.03,
                        "{}: floor {floor} saves {s} beyond the bound {}",
                        b.benchmark,
                        b.max_savings()
                    );
                }
            }
        }
    }

    #[test]
    fn lower_floors_save_no_less_energy() {
        let sweep = test_sweep();
        for exponent in Exponent::BOTH {
            let mut last = -1.0;
            for floor in [0.8, 0.6, 0.4, 0.2] {
                let s = sweep.suite_savings(exponent, floor);
                assert!(s >= last - 0.01, "floor {floor}: {s} < {last}");
                last = s;
            }
        }
    }
}
