//! `--bench-machine`: machine/cache throughput regression harness.
//!
//! Measures the simulator's six hot paths — the governed tick loop, the
//! batched SoA lockstep loop, the segment-level fast-forward path, the
//! 10,000-node discrete-event fleet engine, the open-loop serve path, and
//! the cache-hierarchy simulation that characterization drives — plus the
//! wall-clock of the full serial suite.
//! The numbers land in `results/BENCH_machine.json`; `scripts/check.sh`
//! compares each run against the committed baseline and fails the build on
//! a >20% regression, so hot-path slowdowns surface as red CI instead of
//! slow experiments.

use std::path::Path;
use std::time::Instant;

use aapm_platform::batch::MachineBatch;
use aapm_platform::config::MachineConfig;
use aapm_platform::error::Result;
use aapm_platform::fleet::{CohortMode, Fleet, UncontrolledFleet};
use aapm_platform::hierarchy::{MemoryHierarchy, PrefetchConfig};
use aapm_platform::machine::Machine;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateId;
use aapm_platform::units::Seconds;
use aapm_platform::workload::WorkloadSource;
use aapm_workloads::footprint::Footprint;
use aapm_workloads::loops::MicroLoop;
use aapm_workloads::requests::RequestWorkload;

use crate::pool::Pool;
use crate::{run_suite, ExperimentContext};

/// Micro-measurement repetitions; the best (least-interfered) run counts.
const REPS: usize = 3;

/// Throughput numbers for one `--bench-machine` run.
#[derive(Debug, Clone, Copy)]
pub struct MachineBenchReport {
    /// Simulated seconds per wall second through the governed `tick` path,
    /// with a p-state change every 100 ticks (memo invalidation included).
    pub ticked_sim_per_wall: f64,
    /// Simulated machine-seconds per wall second through the batched SoA
    /// lockstep path (`MachineBatch`), summed over all lanes, with the same
    /// every-100-ticks p-state cadence as the scalar tick bench.
    pub batched_sim_per_wall: f64,
    /// Simulated seconds per wall second through `run_to_completion`'s
    /// segment-level fast-forward path (a full galgel phase program).
    pub fastforward_sim_per_wall: f64,
    /// Simulated machine-seconds per wall second through the discrete-event
    /// fleet engine at 10,000 nodes (100 cohorts × 100 lanes, mixed
    /// cadences, some cohorts retiring mid-run), summed over all nodes.
    pub fleet_sim_per_wall: f64,
    /// Simulated seconds per wall second through the open-loop serve path:
    /// a server machine draining a seeded request stream, arrivals fed
    /// tick by tick as the session runtime does.
    pub serve_sim_per_wall: f64,
    /// Millions of cache-hierarchy accesses per wall second on the
    /// characterization path (FMA stream, prefetcher enabled).
    pub cache_maccesses_per_sec: f64,
    /// Wall-clock of model training (characterization + sampling + fits).
    pub train_wall_s: f64,
    /// Wall-clock of the full experiment suite at `--jobs 1`.
    pub suite_serial_wall_s: f64,
}

impl MachineBenchReport {
    /// One-line human summary (the check.sh bench-gate headline).
    pub fn headline(&self) -> String {
        format!(
            "machine bench: tick {:.0} sim-s/wall-s, batched {:.0} sim-s/wall-s, \
             fast-forward {:.0} sim-s/wall-s, fleet(10k) {:.0} sim-s/wall-s, \
             serve {:.0} sim-s/wall-s, cache {:.1} Maccess/s, train {:.3}s, \
             serial suite {:.3}s",
            self.ticked_sim_per_wall,
            self.batched_sim_per_wall,
            self.fastforward_sim_per_wall,
            self.fleet_sim_per_wall,
            self.serve_sim_per_wall,
            self.cache_maccesses_per_sec,
            self.train_wall_s,
            self.suite_serial_wall_s,
        )
    }

    /// Writes the report as flat JSON (hand-rolled; numbers only).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = format!(
            "{{\n  \"ticked_sim_per_wall\": {:.1},\n  \"batched_sim_per_wall\": {:.1},\n  \
             \"fastforward_sim_per_wall\": {:.1},\n  \"fleet_sim_per_wall\": {:.1},\n  \
             \"serve_sim_per_wall\": {:.1},\n  \
             \"cache_maccesses_per_sec\": {:.2},\n  \"train_wall_s\": {:.3},\n  \
             \"suite_serial_wall_s\": {:.3}\n}}\n",
            self.ticked_sim_per_wall,
            self.batched_sim_per_wall,
            self.fastforward_sim_per_wall,
            self.fleet_sim_per_wall,
            self.serve_sim_per_wall,
            self.cache_maccesses_per_sec,
            self.train_wall_s,
            self.suite_serial_wall_s,
        );
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, json)
    }
}

/// A long mixed workload phase (never finishes within the bench).
fn fixture_program() -> PhaseProgram {
    let phase = PhaseDescriptor::builder("bench")
        .instructions(u64::MAX / 4)
        .core_cpi(0.7)
        .mem_fraction(0.4)
        .l1_mpi(0.03)
        .l2_mpi(0.004)
        .overlap(0.3)
        .build()
        .expect("fixture phase is valid");
    PhaseProgram::from_phase(phase)
}

/// Best-of-[`REPS`] throughput of `measure`, which returns
/// (units-of-work, wall-seconds).
fn best_throughput(mut measure: impl FnMut() -> (f64, f64)) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let (work, wall) = measure();
        if wall > 0.0 {
            best = best.max(work / wall);
        }
    }
    best
}

/// Simulated-seconds/wall-second through the governed tick path.
fn ticked_throughput() -> f64 {
    const TICKS: u32 = 20_000;
    let tick = Seconds::from_millis(10.0);
    best_throughput(|| {
        let mut machine = Machine::new(MachineConfig::pentium_m_755(1), fixture_program());
        let start = Instant::now();
        for i in 0..TICKS {
            // Governor-like cadence: a DVFS move (and memo invalidation)
            // every 100 control intervals.
            if i % 100 == 0 {
                let target = PStateId::new(((i / 100) % 8) as usize);
                machine.set_pstate(target).expect("p-state 0..8 valid");
            }
            machine.tick(tick);
        }
        (f64::from(TICKS) * tick.seconds(), start.elapsed().as_secs_f64())
    })
}

/// Simulated machine-seconds/wall-second through the batched SoA lockstep
/// path: [`MachineBatch`] lanes running the same fixture workload from
/// different seeds, under the same every-100-ticks DVFS cadence as the
/// scalar tick bench (those ticks exercise the scalar fallback; the other
/// 99% ride the vector path).
fn batched_throughput() -> f64 {
    const LANES: usize = 32;
    const TICKS: u32 = 20_000;
    let tick = Seconds::from_millis(10.0);
    best_throughput(|| {
        let machines: Vec<Machine> = (0..LANES)
            .map(|lane| {
                Machine::new(MachineConfig::pentium_m_755(1 + lane as u64), fixture_program())
            })
            .collect();
        let mut batch = MachineBatch::new(machines);
        let start = Instant::now();
        for i in 0..TICKS {
            if i % 100 == 0 {
                let target = PStateId::new(((i / 100) % 8) as usize);
                for lane in 0..LANES {
                    batch.set_pstate(lane, target).expect("p-state 0..8 valid");
                }
            }
            batch.tick_all(tick);
        }
        (LANES as f64 * f64::from(TICKS) * tick.seconds(), start.elapsed().as_secs_f64())
    })
}

/// Simulated-seconds/wall-second through the fast-forward path.
fn fastforward_throughput() -> f64 {
    let galgel = aapm_workloads::spec::by_name("galgel").expect("galgel exists");
    best_throughput(|| {
        let mut machine =
            Machine::new(MachineConfig::pentium_m_755(1), galgel.program().clone());
        let start = Instant::now();
        let simulated = machine.run_to_completion().expect("galgel makes forward progress");
        (simulated.seconds(), start.elapsed().as_secs_f64())
    })
}

/// Simulated machine-seconds/wall-second through the discrete-event fleet
/// engine: 10,000 nodes as 100 homogeneous cohorts of 100 lanes, cadences
/// cycling 10/20/50 ticks, every fourth cohort sized to finish (and
/// retire from the event heap) mid-run. The headline fleet-scale claim —
/// this must stay comfortably above 1 sim-s/wall-s.
fn fleet_throughput() -> f64 {
    const COHORTS: usize = 100;
    const LANES: usize = 100;
    const HORIZON_TICKS: u64 = 1_000; // 10 simulated seconds
    best_throughput(|| {
        let mut fleet = Fleet::new(Seconds::from_millis(10.0));
        for cohort in 0..COHORTS {
            let cadence = [10, 20, 50][cohort % 3];
            let machines: Vec<Machine> = (0..LANES)
                .map(|lane| {
                    let seed = (cohort * LANES + lane) as u64 + 1;
                    // Every fourth cohort finishes in ~1 simulated second
                    // and retires; the rest outlive the horizon.
                    let instructions =
                        if cohort % 4 == 0 { 2_000_000_000 } else { u64::MAX / 4 };
                    let phase = PhaseDescriptor::builder("fleet-bench")
                        .instructions(instructions)
                        .core_cpi(0.7)
                        .build()
                        .expect("fixture phase is valid");
                    Machine::new(
                        MachineConfig::pentium_m_755(seed),
                        PhaseProgram::from_phase(phase),
                    )
                })
                .collect();
            fleet
                .add_cohort(machines, CohortMode::Governed { cadence_ticks: cadence })
                .expect("bench cohorts are valid");
        }
        let start = Instant::now();
        fleet.run_des(HORIZON_TICKS, 0, &mut UncontrolledFleet).expect("bench fleet runs");
        let simulated: f64 = (0..fleet.cohort_count())
            .map(|c| (0..fleet.lanes(c)).map(|l| fleet.elapsed(c, l).seconds()).sum::<f64>())
            .sum();
        (simulated, start.elapsed().as_secs_f64())
    })
}

/// Simulated-seconds/wall-second through the open-loop serve path: one
/// server machine draining a seeded diurnal arrival stream, ticked at the
/// 10 ms control cadence with each tick's arrivals offered just before it
/// (the session runtime's feeding pattern), under the same every-100-ticks
/// DVFS cadence as the other tick benches. The load is sized to keep the
/// queue busy so the bench exercises the serve/idle segment loop rather
/// than idling through empty ticks.
fn serve_throughput() -> f64 {
    const TICKS: u32 = 20_000; // 200 simulated seconds
    let tick = Seconds::from_millis(10.0);
    best_throughput(|| {
        let mut source = {
            let mut b = RequestWorkload::builder("serve-bench");
            b.seed(7).rates(150.0, 300.0);
            b.build().expect("bench workload is valid")
        };
        let mut machine = source.machine(MachineConfig::pentium_m_755(7));
        let mut arrivals = Vec::new();
        let start = Instant::now();
        for i in 0..TICKS {
            arrivals.clear();
            let window_start = Seconds::new(f64::from(i) * tick.seconds());
            let window_end = Seconds::new(f64::from(i + 1) * tick.seconds());
            source.arrivals_into(window_start, window_end, &mut arrivals);
            for request in arrivals.drain(..) {
                machine.offer_request(request);
            }
            if i % 100 == 0 {
                let target = PStateId::new(((i / 100) % 8) as usize);
                machine.set_pstate(target).expect("p-state 0..8 valid");
            }
            machine.tick(tick);
        }
        (f64::from(TICKS) * tick.seconds(), start.elapsed().as_secs_f64())
    })
}

/// Millions of hierarchy accesses per second on the characterization path.
///
/// # Errors
///
/// Propagates hierarchy-construction errors (none for the built-in
/// geometry).
fn cache_throughput() -> Result<f64> {
    const PASSES: u64 = 3;
    let mut hierarchy =
        MemoryHierarchy::pentium_m_755()?.with_prefetcher(PrefetchConfig::pentium_m());
    Ok(best_throughput(|| {
        let mut accesses = 0u64;
        let start = Instant::now();
        for pass in 0..PASSES {
            MicroLoop::Fma.for_each_address(Footprint::Dram, pass, |addr| {
                hierarchy.access(addr);
                accesses += 1;
            });
        }
        (accesses as f64 / 1e6, start.elapsed().as_secs_f64())
    }))
}

/// Runs the full machine benchmark: the three micro throughputs plus a
/// timed train + serial (`--jobs 1`) suite run.
///
/// # Errors
///
/// Propagates platform errors from training or the suite.
pub fn run() -> Result<MachineBenchReport> {
    let ticked_sim_per_wall = ticked_throughput();
    let batched_sim_per_wall = batched_throughput();
    let fastforward_sim_per_wall = fastforward_throughput();
    let fleet_sim_per_wall = fleet_throughput();
    let serve_sim_per_wall = serve_throughput();
    let cache_maccesses_per_sec = cache_throughput()?;

    let train_start = Instant::now();
    let ctx = ExperimentContext::train()?;
    let train_wall_s = train_start.elapsed().as_secs_f64();

    let pool = Pool::new(1);
    let suite_start = Instant::now();
    run_suite(&ctx, &pool)?;
    let suite_serial_wall_s = suite_start.elapsed().as_secs_f64();

    Ok(MachineBenchReport {
        ticked_sim_per_wall,
        batched_sim_per_wall,
        fastforward_sim_per_wall,
        fleet_sim_per_wall,
        serve_sim_per_wall,
        cache_maccesses_per_sec,
        train_wall_s,
        suite_serial_wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_throughputs_are_positive() {
        // The micro benches alone (no train/suite) must produce sane
        // numbers; wall-clock magnitudes are environment-dependent.
        assert!(ticked_throughput() > 0.0);
        assert!(batched_throughput() > 0.0);
        assert!(fastforward_throughput() > 0.0);
        assert!(fleet_throughput() > 1.0, "10k-node fleet must beat real time");
        assert!(serve_throughput() > 1.0, "one serve lane must beat real time");
        assert!(cache_throughput().unwrap() > 0.0);
    }

    #[test]
    fn report_json_round_trips_fields() {
        let report = MachineBenchReport {
            ticked_sim_per_wall: 1234.5,
            batched_sim_per_wall: 9876.5,
            fastforward_sim_per_wall: 67890.1,
            fleet_sim_per_wall: 4321.0,
            serve_sim_per_wall: 321.0,
            cache_maccesses_per_sec: 42.25,
            train_wall_s: 0.5,
            suite_serial_wall_s: 0.75,
        };
        let dir = std::env::temp_dir().join("aapm_bench_machine_test");
        let path = dir.join("BENCH_machine.json");
        report.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for key in [
            "ticked_sim_per_wall",
            "batched_sim_per_wall",
            "fastforward_sim_per_wall",
            "fleet_sim_per_wall",
            "serve_sim_per_wall",
            "cache_maccesses_per_sec",
            "train_wall_s",
            "suite_serial_wall_s",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
