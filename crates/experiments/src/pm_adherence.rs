//! PM power-limit adherence (paper §IV.A.2, prose evaluation).
//!
//! The paper evaluates PM's constraint adherence over 100 ms moving
//! windows across all benchmarks and limits: "PM is able to enforce the
//! power limit for every benchmark except galgel, which in the worst case
//! spends approximately 10% of run-time over the power limit". This
//! experiment reproduces that sweep.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{median_run_spec, pm_power_limits};
use crate::table::{pct, TextTable};

/// Violation threshold below which adherence counts as "enforced" (one
/// 100 ms window in a thousand tolerates measurement noise).
pub const ENFORCED_THRESHOLD: f64 = 0.002;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "pm-adherence",
        "PM 100 ms-window power-limit adherence across benchmarks and limits (paper §IV.A.2)",
    );
    let mut table = TextTable::new(vec!["benchmark", "worst_violation", "worst_limit_w"]);
    let mut offenders = Vec::new();
    let benches = spec::suite();
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = benches
        .iter()
        .map(|bench| {
            move || -> Result<(f64, f64)> {
                let mut worst = 0.0f64;
                let mut worst_limit = 0.0;
                for limit in pm_power_limits() {
                    let pm = GovernorSpec::Pm { limit_w: limit.watts().watts() };
                    let report = median_run_spec(
                        pool,
                        &pm,
                        models_ref,
                        bench.program(),
                        ctx.table(),
                        &[],
                    )?;
                    let violation = report.violation_fraction(limit.watts(), 10);
                    if violation > worst {
                        worst = violation;
                        worst_limit = limit.watts().watts();
                    }
                }
                Ok((worst, worst_limit))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (bench, (worst, worst_limit)) in benches.iter().zip(results) {
        if worst > ENFORCED_THRESHOLD {
            offenders.push(bench.name().to_owned());
        }
        table.row(vec![bench.name().into(), pct(worst), format!("{worst_limit:.1}")]);
    }
    out.table("adherence", table);
    out.note(format!(
        "benchmarks with any violation above {}: {:?} \
         (paper: only galgel, worst ≈10% of run-time at 13.5 W)",
        pct(ENFORCED_THRESHOLD),
        offenders
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn only_galgel_violates_materially() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 26);
        for row in &rows {
            let worst: f64 = row[1].trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
            if row[0] == "galgel" {
                assert!(
                    worst > 0.01 && worst < 0.25,
                    "galgel worst violation {worst} should be material but bounded"
                );
            } else {
                assert!(worst <= 0.02, "{} violates {worst}", row[0]);
            }
        }
    }
}
