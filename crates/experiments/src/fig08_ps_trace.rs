//! Figure 8 — PowerSave in action on `ammp` with an 80 % floor.
//!
//! The paper's figure shows PS lowering frequency during `ammp`'s
//! memory-bound regions while sustaining the 80 %-of-peak performance
//! requirement. This experiment reproduces the run and reports the
//! frequency/power trace, residency, and the realized performance.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run_spec;
use crate::table::{f3, pct, TextTable};

/// The figure's performance floor.
pub const FLOOR: f64 = 0.8;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig8",
        "PS on ammp with an 80% performance floor (paper Figure 8)",
    );
    let ammp = spec::by_name("ammp").expect("ammp is in the suite");

    let reference_cell = {
        let ammp = ammp.clone();
        move || {
            median_run_spec(
                pool,
                &GovernorSpec::Unconstrained,
                &ctx.spec_models(),
                ammp.program(),
                ctx.table(),
                &[],
            )
        }
    };
    let ps_cell = {
        let ammp = ammp.clone();
        move || {
            median_run_spec(
                pool,
                &GovernorSpec::Ps { floor: FLOOR },
                &ctx.spec_models(),
                ammp.program(),
                ctx.table(),
                &[],
            )
        }
    };
    let cells: Vec<Box<dyn FnOnce() -> Result<_> + Send>> =
        vec![Box::new(reference_cell), Box::new(ps_cell)];
    let mut reports = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    let ps = reports.pop().expect("two cells were submitted");
    let reference = reports.pop().expect("two cells were submitted");

    let realized = reference.execution_time / ps.execution_time;
    let savings = ps.energy_savings_vs(&reference);

    let mut summary = TextTable::new(vec!["metric", "value"]);
    summary.row(vec!["reference time (2 GHz)".into(), f3(reference.execution_time.seconds())]);
    summary.row(vec!["ps time".into(), f3(ps.execution_time.seconds())]);
    summary.row(vec!["realized performance".into(), pct(realized)]);
    summary.row(vec!["energy savings".into(), pct(savings)]);
    summary.row(vec!["p-state transitions".into(), ps.transitions.to_string()]);
    out.table("summary", summary);

    let mut residency = TextTable::new(vec!["freq_mhz", "residency"]);
    for (id, frac) in ps.trace.pstate_residency() {
        residency.row(vec![ctx.table().get(id)?.frequency().mhz().to_string(), pct(frac)]);
    }
    out.table("residency", residency);

    let mut trace = TextTable::new(vec!["t_ms", "power_w", "freq_mhz", "ipc"]);
    for (i, record) in ps.trace.records().iter().enumerate() {
        if i % 5 == 0 {
            trace.row(vec![
                format!("{:.0}", record.time.millis()),
                f3(record.power.watts()),
                ctx.table().get(record.pstate)?.frequency().mhz().to_string(),
                record.ipc.map_or_else(|| "-".into(), f3),
            ]);
        }
    }
    out.table("trace", trace);
    out.note(format!(
        "PS sustains {} of peak performance (floor {}), modulating between \
         p-states as ammp alternates memory- and core-bound phases",
        pct(realized),
        pct(FLOOR)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn ps_respects_floor_and_modulates() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        // Realized performance ≥ 80% (ammp is well-modelled).
        let summary = &out.tables[0].1;
        let realized: f64 = summary
            .to_csv()
            .lines()
            .find(|l| l.starts_with("realized"))
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(realized >= 78.0, "realized {realized}%");
        // PS uses more than one p-state on ammp.
        let residency = &out.tables[1].1;
        assert!(residency.len() >= 2, "expected modulation across p-states");
    }
}
