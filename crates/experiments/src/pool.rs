//! Scoped-thread job pool with deterministic merge.
//!
//! Every cell of the experiment matrix — one `(experiment, workload,
//! governor, seed)` simulation — is independent: [`crate::runner::median_run`]
//! constructs a fresh `Machine`, DAQ, and governor per seed, and nothing in
//! the simulation stack touches global state. The pool exploits that by
//! fanning submitted cells over `jobs` OS threads while guaranteeing that
//! the *merged* result vector is in submission order, so a parallel run is
//! bit-identical to a serial one.
//!
//! Design points:
//!
//! * **Std threads only.** The build is fully offline; no rayon/crossbeam.
//!   Workers are `std::thread::scope` threads pulling cell indices from an
//!   atomic cursor (work stealing degenerates to a shared queue, which is
//!   enough — cells are coarse).
//! * **Bounded nesting.** Experiments fan out benchmarks, and each
//!   benchmark fans out its three seeds. A naive implementation would spawn
//!   `jobs × jobs` threads. Instead the pool holds `jobs − 1` *permits*:
//!   every `run` call (the submitting thread always works too) acquires as
//!   many extra workers as are free, and a nested call that finds none
//!   simply runs its cells inline on the worker that submitted them. Total
//!   live threads never exceed `jobs`.
//! * **Panic containment.** A panicking cell fails *that cell* with
//!   [`PlatformError::CellPanicked`]; sibling cells and the suite continue.
//! * **Timing.** The pool accumulates per-cell wall-clock so the suite can
//!   report cells/sec and an estimated speedup vs serial execution
//!   (see [`PoolStats`]).
//!
//! `Pool::new(1)` (or `--jobs 1`) preserves the historical serial path:
//! cells execute in submission order on the calling thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aapm_platform::error::{PlatformError, Result};

use crate::observe::RunObserver;

/// Shared state behind a cloneable [`Pool`] handle.
#[derive(Debug)]
struct PoolInner {
    /// Maximum concurrent worker threads (including the submitting thread).
    jobs: usize,
    /// Extra worker threads currently available (`jobs − 1` when idle).
    permits: AtomicUsize,
    /// `run` calls currently active (for top-level-cell accounting).
    active_runs: AtomicUsize,
    /// Cells executed, at any nesting depth.
    cells_run: AtomicUsize,
    /// Cells that returned an error (including contained panics).
    cells_failed: AtomicUsize,
    /// Cells executed by top-level (non-nested) `run` calls.
    top_cells: AtomicUsize,
    /// Σ wall-clock of top-level cells — the serial-execution estimate.
    top_busy_nanos: AtomicU64,
    /// Longest single top-level cell.
    top_max_cell_nanos: AtomicU64,
    /// Σ wall-clock of *all* cells, at any nesting depth.
    busy_nanos: AtomicU64,
    /// Cells submitted but not yet claimed by a worker.
    queued: AtomicUsize,
    /// High-water mark of `queued`.
    peak_queued: AtomicUsize,
    /// Observability sink consulted by [`crate::runner::median_run`]; when
    /// present, every simulation cell runs with an enabled metrics
    /// registry and reports its event stream here.
    observer: Option<Arc<RunObserver>>,
}

/// A work pool that fans independent experiment cells over OS threads and
/// merges their results in deterministic submission order.
///
/// Handles are cheap to clone and share one set of permits and counters,
/// so a single pool bounds the thread count of an entire suite run.
#[derive(Debug, Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

/// Counters accumulated over a pool's lifetime.
///
/// "Top-level" cells are those submitted by `run` calls that were not
/// themselves nested inside another cell of the same pool; they partition
/// the suite's work, so `top_busy` — the sum of their individual wall
/// times — estimates what a fully serial execution would have cost, and
/// `top_busy / suite_wall` estimates the realized speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured parallelism.
    pub jobs: usize,
    /// Cells executed at any nesting depth (every simulation run).
    pub cells_run: usize,
    /// Cells that failed (errors and contained panics).
    pub cells_failed: usize,
    /// Top-level cells executed.
    pub top_cells: usize,
    /// Σ wall-clock of top-level cells (serial-execution estimate).
    pub top_busy: Duration,
    /// Longest single top-level cell (lower bound on parallel wall-clock).
    pub longest_top_cell: Duration,
    /// Σ wall-clock of all cells at any nesting depth.
    pub cell_busy: Duration,
    /// High-water mark of cells submitted but not yet claimed by a worker.
    pub peak_queue_depth: usize,
}

impl Pool {
    /// Creates a pool running at most `jobs` concurrent cells
    /// (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool::build(jobs, None)
    }

    /// Creates a pool with an observability sink attached: simulation
    /// cells run with metrics enabled and report their event streams and
    /// snapshots to `observer`.
    pub fn with_observer(jobs: usize, observer: Arc<RunObserver>) -> Self {
        Pool::build(jobs, Some(observer))
    }

    fn build(jobs: usize, observer: Option<Arc<RunObserver>>) -> Self {
        let jobs = jobs.max(1);
        Pool {
            inner: Arc::new(PoolInner {
                jobs,
                permits: AtomicUsize::new(jobs - 1),
                active_runs: AtomicUsize::new(0),
                cells_run: AtomicUsize::new(0),
                cells_failed: AtomicUsize::new(0),
                top_cells: AtomicUsize::new(0),
                top_busy_nanos: AtomicU64::new(0),
                top_max_cell_nanos: AtomicU64::new(0),
                busy_nanos: AtomicU64::new(0),
                queued: AtomicUsize::new(0),
                peak_queued: AtomicUsize::new(0),
                observer,
            }),
        }
    }

    /// The attached observability sink, if any.
    pub fn observer(&self) -> Option<&Arc<RunObserver>> {
        self.inner.observer.as_ref()
    }

    /// The historical serial path: cells run in submission order on the
    /// calling thread.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized to the host's available parallelism (1 if unknown).
    pub fn default_parallel() -> Self {
        Pool::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// Configured parallelism.
    pub fn jobs(&self) -> usize {
        self.inner.jobs
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            jobs: inner.jobs,
            cells_run: inner.cells_run.load(Ordering::Relaxed),
            cells_failed: inner.cells_failed.load(Ordering::Relaxed),
            top_cells: inner.top_cells.load(Ordering::Relaxed),
            top_busy: Duration::from_nanos(inner.top_busy_nanos.load(Ordering::Relaxed)),
            longest_top_cell: Duration::from_nanos(
                inner.top_max_cell_nanos.load(Ordering::Relaxed),
            ),
            cell_busy: Duration::from_nanos(inner.busy_nanos.load(Ordering::Relaxed)),
            peak_queue_depth: inner.peak_queued.load(Ordering::Relaxed),
        }
    }

    /// Runs every cell and returns their results **in submission order**,
    /// regardless of which worker finished which cell when.
    ///
    /// A cell that panics yields [`PlatformError::CellPanicked`] for its
    /// slot; the other cells are unaffected. Nested `run` calls from inside
    /// a cell are safe: they execute inline when the pool is saturated.
    pub fn run<T, F>(&self, cells: Vec<F>) -> Vec<Result<T>>
    where
        T: Send,
        F: FnOnce() -> Result<T> + Send,
    {
        let top_level = self.inner.active_runs.fetch_add(1, Ordering::SeqCst) == 0;
        let results = self.run_inner(cells, top_level);
        self.inner.active_runs.fetch_sub(1, Ordering::SeqCst);
        results
    }

    fn run_inner<T, F>(&self, cells: Vec<F>, top_level: bool) -> Vec<Result<T>>
    where
        T: Send,
        F: FnOnce() -> Result<T> + Send,
    {
        let count = cells.len();
        let depth = self.inner.queued.fetch_add(count, Ordering::Relaxed) + count;
        self.inner.peak_queued.fetch_max(depth, Ordering::Relaxed);
        let extra_wanted = count.saturating_sub(1);
        let extra = if self.inner.jobs == 1 { 0 } else { self.acquire(extra_wanted) };
        if extra == 0 {
            // Serial path: submission order on the calling thread.
            return cells
                .into_iter()
                .map(|cell| {
                    self.inner.queued.fetch_sub(1, Ordering::Relaxed);
                    self.run_cell(cell, top_level)
                })
                .collect();
        }

        let tasks: Vec<Mutex<Option<F>>> =
            cells.into_iter().map(|cell| Mutex::new(Some(cell))).collect();
        let slots: Vec<Mutex<Option<Result<T>>>> =
            (0..count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let worker = || loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= count {
                break;
            }
            let cell = tasks[index]
                .lock()
                .expect("task mutex is never poisoned: cells cannot panic while held")
                .take()
                .expect("each task index is claimed exactly once");
            self.inner.queued.fetch_sub(1, Ordering::Relaxed);
            let result = self.run_cell(cell, top_level);
            *slots[index]
                .lock()
                .expect("slot mutex is never poisoned: results are plain moves") =
                Some(result);
        };
        std::thread::scope(|scope| {
            for _ in 0..extra {
                scope.spawn(worker);
            }
            // The submitting thread is always the last worker.
            worker();
        });
        self.release(extra);

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutex is never poisoned")
                    .expect("every index below the cursor was executed")
            })
            .collect()
    }

    /// Executes one cell with panic containment and timing.
    fn run_cell<T>(&self, cell: impl FnOnce() -> Result<T>, top_level: bool) -> Result<T> {
        let start = Instant::now();
        let result = match catch_unwind(AssertUnwindSafe(cell)) {
            Ok(result) => result,
            Err(payload) => {
                Err(PlatformError::CellPanicked { message: panic_message(payload.as_ref()) })
            }
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.inner.cells_run.fetch_add(1, Ordering::Relaxed);
        self.inner.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        if result.is_err() {
            self.inner.cells_failed.fetch_add(1, Ordering::Relaxed);
        }
        if top_level {
            self.inner.top_cells.fetch_add(1, Ordering::Relaxed);
            self.inner.top_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.inner.top_max_cell_nanos.fetch_max(nanos, Ordering::Relaxed);
        }
        result
    }

    /// Takes up to `want` worker permits; returns how many were granted.
    fn acquire(&self, want: usize) -> usize {
        let permits = &self.inner.permits;
        let mut available = permits.load(Ordering::Acquire);
        loop {
            let take = want.min(available);
            if take == 0 {
                return 0;
            }
            match permits.compare_exchange(
                available,
                available - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(now) => available = now,
            }
        }
    }

    fn release(&self, granted: usize) {
        self.inner.permits.fetch_add(granted, Ordering::Release);
    }
}

/// Renders a panic payload (almost always a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        for jobs in [1, 2, 8] {
            let pool = Pool::new(jobs);
            let cells: Vec<_> = (0..32)
                .map(|i| move || -> Result<usize> { Ok(i * i) })
                .collect();
            let results: Vec<usize> =
                pool.run(cells).into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let pool = Pool::new(4);
        let cells: Vec<Box<dyn FnOnce() -> Result<u32> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| panic!("injected cell panic")),
            Box::new(|| Ok(3)),
        ];
        let results = pool.run(cells);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[2], Ok(3));
        match &results[1] {
            Err(PlatformError::CellPanicked { message }) => {
                assert!(message.contains("injected cell panic"), "{message}");
            }
            other => panic!("expected CellPanicked, got {other:?}"),
        }
        assert_eq!(pool.stats().cells_failed, 1);
    }

    #[test]
    fn nested_runs_do_not_deadlock_or_reorder() {
        let pool = Pool::new(3);
        let outer: Vec<_> = (0..6)
            .map(|i| {
                let pool = pool.clone();
                move || -> Result<Vec<usize>> {
                    let inner: Vec<_> =
                        (0..4).map(|j| move || -> Result<usize> { Ok(10 * i + j) }).collect();
                    pool.run(inner).into_iter().collect()
                }
            })
            .collect();
        let results = pool.run(outer);
        for (i, result) in results.into_iter().enumerate() {
            let values = result.unwrap();
            assert_eq!(values, (0..4).map(|j| 10 * i + j).collect::<Vec<_>>());
        }
        // All permits returned.
        assert_eq!(pool.inner.permits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stats_separate_top_level_from_nested_cells() {
        let pool = Pool::new(2);
        let outer: Vec<_> = (0..3)
            .map(|_| {
                let pool = pool.clone();
                move || -> Result<usize> {
                    let inner: Vec<_> = (0..2).map(|j| move || -> Result<usize> { Ok(j) }).collect();
                    Ok(pool.run(inner).into_iter().map(|r| r.unwrap()).sum())
                }
            })
            .collect();
        let _ = pool.run(outer);
        let stats = pool.stats();
        assert_eq!(stats.top_cells, 3, "only the outer cells are top-level");
        assert_eq!(stats.cells_run, 3 + 3 * 2, "nested cells still counted in the total");
        assert_eq!(stats.cells_failed, 0);
        assert!(stats.top_busy >= stats.longest_top_cell);
    }

    #[test]
    fn queue_and_busy_accounting() {
        for jobs in [1, 4] {
            let pool = Pool::new(jobs);
            let cells: Vec<_> = (0..8)
                .map(|i| {
                    move || -> Result<usize> {
                        std::thread::sleep(Duration::from_millis(1));
                        Ok(i)
                    }
                })
                .collect();
            let _ = pool.run(cells);
            let stats = pool.stats();
            assert!(
                (1..=8).contains(&stats.peak_queue_depth),
                "jobs={jobs}: peak {}",
                stats.peak_queue_depth
            );
            assert!(stats.cell_busy >= stats.longest_top_cell, "jobs={jobs}");
            assert_eq!(pool.inner.queued.load(Ordering::SeqCst), 0, "queue drains");
        }
    }

    #[test]
    fn zero_jobs_clamps_to_serial() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), 1);
        let results = pool.run(vec![|| Ok(7u8)]);
        assert_eq!(results, vec![Ok(7)]);
    }
}
