//! Cross-run observability sink: collects per-run event streams and
//! metrics snapshots from every simulation cell and writes them out as
//! JSONL traces (`--trace-out`) and an aggregated end-of-suite snapshot
//! (`--metrics-out`).
//!
//! Determinism contract: cells report in whatever order the pool finishes
//! them, so the observer only *buffers* during the run. All output is
//! produced by [`RunObserver::finish`], which sorts runs by label (ties
//! broken by content) before assigning file names and merging, so the
//! written artifacts do not depend on `--jobs` or scheduling.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use aapm_platform::error::{PlatformError, Result};
use aapm_telemetry::metrics::{Metrics, MetricsSnapshot, Summary};

/// Everything one simulation cell reported.
#[derive(Debug)]
struct RunRecord {
    /// Caller-supplied label (`{workload}-{governor}-s{seed}`…).
    label: String,
    /// The run's event stream, already rendered as JSONL.
    jsonl: String,
    /// The run's end-of-run metrics snapshot.
    snapshot: MetricsSnapshot,
}

/// A thread-safe sink for per-run observability data, shared by all cells
/// of a suite via [`crate::pool::Pool::with_observer`].
#[derive(Debug, Default)]
pub struct RunObserver {
    trace_dir: Option<PathBuf>,
    runs: Mutex<Vec<RunRecord>>,
}

impl RunObserver {
    /// Creates an observer. When `trace_dir` is set, [`finish`] writes one
    /// JSONL event-stream file per observed run into it.
    ///
    /// [`finish`]: RunObserver::finish
    pub fn new(trace_dir: Option<PathBuf>) -> Self {
        RunObserver { trace_dir, runs: Mutex::new(Vec::new()) }
    }

    /// Buffers one finished run's event stream and snapshot under `label`.
    /// Labels need not be unique; duplicates are disambiguated with a
    /// numeric suffix at write time.
    pub fn observe_run(&self, label: &str, metrics: &Metrics) {
        self.observe_run_with_spec(label, metrics, None);
    }

    /// Like [`observe_run`], but when the run's governor was built from a
    /// [`GovernorSpec`](aapm::spec::GovernorSpec), its JSON form is
    /// recorded as a `run_spec` header line ahead of the event stream, so
    /// a trace file is self-describing: the exact governor configuration
    /// travels with the events it produced.
    ///
    /// [`observe_run`]: RunObserver::observe_run
    pub fn observe_run_with_spec(&self, label: &str, metrics: &Metrics, spec_json: Option<&str>) {
        let mut jsonl = String::new();
        if let Some(spec) = spec_json {
            // Same line shape as every event record: a "t" key first, an
            // "event" tag second (downstream line-oriented consumers key
            // on both).
            jsonl.push_str(&format!("{{\"t\":0.000000,\"event\":\"run_spec\",\"spec\":{spec}}}\n"));
        }
        jsonl.push_str(&metrics.events_jsonl());
        let record =
            RunRecord { label: label.to_owned(), jsonl, snapshot: metrics.snapshot() };
        self.runs.lock().expect("observer mutex is never poisoned").push(record);
    }

    /// Number of runs observed so far.
    pub fn runs_observed(&self) -> usize {
        self.runs.lock().expect("observer mutex is never poisoned").len()
    }

    /// Writes all buffered output: one `<label>.jsonl` per run into the
    /// trace directory (when configured) and, when `metrics_out` is given,
    /// a single aggregated JSON snapshot across every observed run.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] when the trace directory or
    /// snapshot file cannot be created or written.
    pub fn finish(&self, metrics_out: Option<&Path>) -> Result<()> {
        let mut runs = self.runs.lock().expect("observer mutex is never poisoned");
        // Deterministic order regardless of pool scheduling: by label,
        // ties (identical cells re-run by different experiments) by
        // content, so suffix assignment below is stable too.
        runs.sort_by(|a, b| (&a.label, &a.jsonl).cmp(&(&b.label, &b.jsonl)));

        if let Some(dir) = &self.trace_dir {
            fs::create_dir_all(dir).map_err(|e| io_config_error("trace-out", dir, &e))?;
            let mut used: BTreeMap<String, u32> = BTreeMap::new();
            for record in runs.iter() {
                let base = sanitize_label(&record.label);
                let occurrence = used.entry(base.clone()).or_insert(0);
                *occurrence += 1;
                let name = if *occurrence == 1 {
                    format!("{base}.jsonl")
                } else {
                    format!("{base}-{occurrence}.jsonl")
                };
                let path = dir.join(name);
                fs::write(&path, &record.jsonl)
                    .map_err(|e| io_config_error("trace-out", &path, &e))?;
            }
        }

        if let Some(path) = metrics_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs::create_dir_all(parent).map_err(|e| io_config_error("metrics-out", parent, &e))?;
            }
            let json = aggregate_json(&runs);
            fs::write(path, json).map_err(|e| io_config_error("metrics-out", path, &e))?;
        }
        Ok(())
    }
}

fn io_config_error(parameter: &'static str, path: &Path, error: &std::io::Error) -> PlatformError {
    PlatformError::InvalidConfig {
        parameter,
        reason: format!("cannot write {}: {error}", path.display()),
    }
}

/// Maps a run label to a safe file stem (`watchdog<pm>` → `watchdog_pm_`).
fn sanitize_label(label: &str) -> String {
    let mapped: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect();
    if mapped.is_empty() { "run".to_owned() } else { mapped }
}

/// Renders an f64 as a JSON value (non-finite values become `null`).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

fn json_summary(summary: &Summary) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
        summary.count,
        json_f64(summary.sum),
        json_f64(summary.min),
        json_f64(summary.max),
        json_f64(summary.mean())
    )
}

/// Merges every run's snapshot into one JSON document: counters are
/// summed, histograms merged, and per-run gauge finals folded into a
/// summary (a gauge is one value per run, so the cross-run shape is a
/// distribution).
fn aggregate_json(runs: &[RunRecord]) -> String {
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, Summary> = BTreeMap::new();
    let mut histograms: BTreeMap<&'static str, Summary> = BTreeMap::new();
    let mut events = 0usize;
    for record in runs {
        events += record.snapshot.events;
        for &(name, value) in &record.snapshot.counters {
            *counters.entry(name).or_insert(0) += value;
        }
        for &(name, value) in &record.snapshot.gauges {
            gauges.entry(name).or_default().observe(value);
        }
        for &(name, ref summary) in &record.snapshot.histograms {
            histograms.entry(name).or_default().merge(summary);
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"runs\": {},\n", runs.len()));
    out.push_str(&format!("  \"events\": {events},\n"));
    out.push_str("  \"counters\": {");
    let counter_body: Vec<String> =
        counters.iter().map(|(name, value)| format!("\"{name}\": {value}")).collect();
    out.push_str(&counter_body.join(", "));
    out.push_str("},\n");
    out.push_str("  \"gauges\": {");
    let gauge_body: Vec<String> =
        gauges.iter().map(|(name, s)| format!("\"{name}\": {}", json_summary(s))).collect();
    out.push_str(&gauge_body.join(", "));
    out.push_str("},\n");
    out.push_str("  \"histograms\": {");
    let histogram_body: Vec<String> =
        histograms.iter().map(|(name, s)| format!("\"{name}\": {}", json_summary(s))).collect();
    out.push_str(&histogram_body.join(", "));
    out.push_str("}\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm_platform::units::Seconds;
    use aapm_telemetry::metrics::EventKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("aapm-observe-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn instrumented(counter: &'static str, value: f64) -> Metrics {
        let metrics = Metrics::enabled();
        metrics.inc(counter);
        metrics.observe("h.margin", value);
        metrics.gauge("g.final", value);
        metrics.event(Seconds::new(0.01), EventKind::HoldEntered { governor: "pm" });
        metrics
    }

    #[test]
    fn traces_and_snapshot_are_written_deterministically() {
        let dir = temp_dir("det");
        let out = dir.join("METRICS.json");
        // Same labels reported in two different arrival orders.
        let contents = |order: &[usize]| {
            let observer = RunObserver::new(Some(dir.clone()));
            let runs = [
                ("ammp-pm-s11", 1.0),
                ("ammp-pm-s11", 1.0), // duplicate label, identical content
                ("art-ps-s23", 2.0),
            ];
            for &i in order {
                let (label, v) = runs[i];
                observer.observe_run(label, &instrumented("c.hit", v));
            }
            assert_eq!(observer.runs_observed(), 3);
            observer.finish(Some(&out)).unwrap();
            let mut files: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .filter(|n| n.ends_with(".jsonl"))
                .collect();
            files.sort();
            (files, fs::read_to_string(&out).unwrap())
        };
        let (files_a, json_a) = contents(&[0, 1, 2]);
        let (files_b, json_b) = contents(&[2, 1, 0]);
        assert_eq!(files_a, files_b);
        assert_eq!(json_a, json_b, "aggregate must not depend on arrival order");
        assert_eq!(
            files_a,
            vec![
                "ammp-pm-s11-2.jsonl".to_owned(),
                "ammp-pm-s11.jsonl".to_owned(),
                "art-ps-s23.jsonl".to_owned()
            ]
        );
        assert!(json_a.contains("\"runs\": 3"));
        assert!(json_a.contains("\"c.hit\": 3"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_header_precedes_the_event_stream() {
        let dir = temp_dir("spec");
        let observer = RunObserver::new(Some(dir.clone()));
        observer.observe_run_with_spec(
            "ammp-pm-s11",
            &instrumented("c.hit", 1.0),
            Some(r#"{"kind":"pm","limit_w":12.5}"#),
        );
        observer.finish(None).unwrap();
        let trace = fs::read_to_string(dir.join("ammp-pm-s11.jsonl")).unwrap();
        let mut lines = trace.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            r#"{"t":0.000000,"event":"run_spec","spec":{"kind":"pm","limit_w":12.5}}"#
        );
        // Every line, header included, keeps the event-record line shape.
        for line in trace.lines() {
            assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "{line}");
        }
        assert!(lines.next().unwrap().contains("hold_entered"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_are_sanitized_for_the_filesystem() {
        assert_eq!(sanitize_label("ammp-watchdog<pm>-s11"), "ammp-watchdog_pm_-s11");
        assert_eq!(sanitize_label("a/b\\c d"), "a_b_c_d");
        assert_eq!(sanitize_label(""), "run");
    }

    #[test]
    fn aggregate_handles_non_finite_gauges() {
        let observer = RunObserver::new(None);
        let metrics = Metrics::enabled();
        metrics.gauge("g.bad", f64::NAN);
        observer.observe_run("x", &metrics);
        let runs = observer.runs.lock().unwrap();
        let json = aggregate_json(&runs);
        assert!(json.contains("null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }
}
