//! Per-sample power-model accuracy on the SPEC suite (paper §II/§III).
//!
//! The paper distinguishes itself from prior art by evaluating *per-sample*
//! accuracy — "where over- and under-estimates would compensate for better
//! overall accuracy" in program-average metrics. This experiment replays
//! every benchmark at 2 GHz, estimates each 10 ms sample from its DPC with
//! the trained model, and reports per-benchmark signed and absolute errors.
//! The expected shape: small errors across most of the suite (the "works
//! well in practice" summary), with `galgel`'s bursts as the under-estimated
//! outlier that motivates both the 0.5 W guardband and the feedback
//! extension.

use aapm_platform::error::Result;
use aapm_platform::events::HardwareEvent;
use aapm_platform::machine::Machine;
use aapm_platform::units::Seconds;
use aapm_platform::MachineConfig;
use aapm_telemetry::daq::{DaqConfig, PowerDaq};
use aapm_telemetry::pmc::PmcDriver;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::table::{f3, TextTable};

/// Per-benchmark per-sample error statistics.
#[derive(Debug, Clone)]
pub struct BenchmarkError {
    /// Benchmark name.
    pub benchmark: String,
    /// Mean signed error in watts (positive = model over-estimates).
    pub mean_signed_w: f64,
    /// Mean absolute error in watts.
    pub mean_abs_w: f64,
    /// Largest single-sample under-estimate in watts (the dangerous
    /// direction for a power-capping governor).
    pub worst_underestimate_w: f64,
}

/// Measures per-sample model error for every benchmark at 2 GHz.
///
/// # Errors
///
/// Propagates platform errors.
pub fn measure(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<BenchmarkError>> {
    let cells: Vec<_> = spec::suite()
        .into_iter()
        .map(|bench| {
            move || -> Result<BenchmarkError> {
                let model = ctx.power_model();
                let top = ctx.table().highest();
                let config = {
                    let mut b = MachineConfig::builder();
                    b.pstates(ctx.table().clone()).seed(0xE4_404);
                    b.build()?
                };
                let mut machine = Machine::new(config, bench.program().clone());
                let mut daq = PowerDaq::new(DaqConfig::default(), 0xE4_404);
                let mut pmc = PmcDriver::new(vec![HardwareEvent::InstructionsDecoded]);
                let mut signed = 0.0;
                let mut abs = 0.0;
                let mut worst_under = 0.0f64;
                let mut samples = 0usize;
                while !machine.finished() && samples < 2_000 {
                    machine.tick(Seconds::from_millis(10.0));
                    let power = daq.sample(&machine);
                    let counters = pmc.sample(&machine);
                    let estimate = model.estimate(top, counters.dpc().unwrap_or(0.0))?.watts();
                    let error = estimate - power.power.watts();
                    signed += error;
                    abs += error.abs();
                    worst_under = worst_under.max(-error);
                    samples += 1;
                }
                let n = samples as f64;
                Ok(BenchmarkError {
                    benchmark: bench.name().to_owned(),
                    mean_signed_w: signed / n,
                    mean_abs_w: abs / n,
                    worst_underestimate_w: worst_under,
                })
            }
        })
        .collect();
    pool.run(cells).into_iter().collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "model-error",
        "Per-sample power-model error across the suite at 2 GHz (paper's accuracy focus)",
    );
    let mut errors = measure(ctx, pool)?;
    errors.sort_by(|a, b| b.worst_underestimate_w.total_cmp(&a.worst_underestimate_w));
    let mut table = TextTable::new(vec![
        "benchmark",
        "mean_signed_w",
        "mean_abs_w",
        "worst_underestimate_w",
    ]);
    for e in &errors {
        table.row(vec![
            e.benchmark.clone(),
            format!("{:+.3}", e.mean_signed_w),
            f3(e.mean_abs_w),
            f3(e.worst_underestimate_w),
        ]);
    }
    out.table("errors", table);
    let suite_mae =
        errors.iter().map(|e| e.mean_abs_w).sum::<f64>() / errors.len() as f64;
    out.note(format!(
        "suite mean absolute per-sample error {suite_mae:.2} W; the 0.5 W \
         guardband covers the typical case, and `{}` tops the \
         under-estimate ranking at {:.2} W — the workload the paper \
         singles out",
        errors[0].benchmark, errors[0].worst_underestimate_w
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn model_accurate_on_suite_with_galgel_as_worst_underestimate() {
        let errors = measure(test_ctx(), crate::test_support::test_pool()).unwrap();
        let suite_mae =
            errors.iter().map(|e| e.mean_abs_w).sum::<f64>() / errors.len() as f64;
        assert!(suite_mae < 1.5, "suite per-sample MAE {suite_mae} too large");
        let worst = errors
            .iter()
            .max_by(|a, b| a.worst_underestimate_w.total_cmp(&b.worst_underestimate_w))
            .unwrap();
        assert_eq!(
            worst.benchmark, "galgel",
            "galgel must be the worst under-estimated workload"
        );
        assert!(
            worst.worst_underestimate_w > 1.0,
            "galgel's bursts exceed the 0.5 W guardband: {}",
            worst.worst_underestimate_w
        );
    }
}
