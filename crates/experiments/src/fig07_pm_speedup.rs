//! Figure 7 — per-benchmark PM speedup at the 17.5 W limit.
//!
//! At 17.5 W static clocking must pin 1800 MHz. PM alternates 1800/2000 MHz
//! by workload. For each benchmark this experiment reports the PM speedup
//! over static clocking and the unconstrained (2 GHz) speedup over static
//! clocking, sorted — as in the paper — by the unconstrained speedup. The
//! headline: PM reaches ≈86 % of the possible suite speedup.

use aapm::limits::PowerLimit;
use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{median_run_spec, static_frequency_for_limit, worst_case_power_curve};
use crate::table::{f3, pct, TextTable};

/// The figure's power limit.
pub const LIMIT_W: f64 = 17.5;

/// Per-benchmark results, exposed for the headline experiment.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// PM speedup over static clocking.
    pub pm_speedup: f64,
    /// Unconstrained (2 GHz) speedup over static clocking.
    pub unconstrained_speedup: f64,
    /// PM time (seconds).
    pub t_pm: f64,
    /// Static time (seconds).
    pub t_static: f64,
    /// Unconstrained time (seconds).
    pub t_unconstrained: f64,
}

/// Computes the per-benchmark rows and the suite capture fraction.
///
/// # Errors
///
/// Propagates platform errors.
pub fn compute(ctx: &ExperimentContext, pool: &Pool) -> Result<(Vec<Fig7Row>, f64)> {
    let limit = PowerLimit::new(LIMIT_W).expect("limit is positive");
    let curve = worst_case_power_curve(pool, ctx.table())?;
    let static_id = static_frequency_for_limit(&curve, ctx.table(), limit);
    let models = ctx.spec_models();
    let models_ref = &models;

    let cells: Vec<_> = spec::suite()
        .into_iter()
        .map(|bench| {
            move || -> Result<Fig7Row> {
                let pm_spec = GovernorSpec::Pm { limit_w: LIMIT_W };
                let pm =
                    median_run_spec(pool, &pm_spec, models_ref, bench.program(), ctx.table(), &[])?;
                let static_spec = GovernorSpec::StaticClock { pstate: static_id.index() };
                let st = median_run_spec(
                    pool,
                    &static_spec,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                let un = median_run_spec(
                    pool,
                    &GovernorSpec::Unconstrained,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok(Fig7Row {
                    benchmark: bench.name().to_owned(),
                    pm_speedup: st.execution_time / pm.execution_time,
                    unconstrained_speedup: st.execution_time / un.execution_time,
                    t_pm: pm.execution_time.seconds(),
                    t_static: st.execution_time.seconds(),
                    t_unconstrained: un.execution_time.seconds(),
                })
            }
        })
        .collect();
    let mut rows = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    rows.sort_by(|a, b| a.unconstrained_speedup.total_cmp(&b.unconstrained_speedup));
    let t_pm: f64 = rows.iter().map(|r| r.t_pm).sum();
    let t_static: f64 = rows.iter().map(|r| r.t_static).sum();
    let t_un: f64 = rows.iter().map(|r| r.t_unconstrained).sum();
    let capture = (t_static - t_pm) / (t_static - t_un);
    Ok((rows, capture))
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig7",
        "Per-benchmark PM and unconstrained speedup over static 1800 MHz at 17.5 W (paper Figure 7)",
    );
    let (rows, capture) = compute(ctx, pool)?;
    let mut table = TextTable::new(vec![
        "benchmark",
        "pm_speedup",
        "unconstrained_speedup",
        "pm_gap_to_max",
    ]);
    for r in &rows {
        table.row(vec![
            r.benchmark.clone(),
            f3(r.pm_speedup),
            f3(r.unconstrained_speedup),
            f3(r.unconstrained_speedup - r.pm_speedup),
        ]);
    }
    out.table("speedups", table);
    out.note(format!(
        "PM captures {} of the possible suite speedup at 17.5 W (paper: 86%)",
        pct(capture)
    ));
    out.note(
        "left end: memory-bound workloads gain nothing from 2 GHz; right \
         end: core-bound workloads gain the full frequency ratio; hot \
         workloads (crafty, perlbmk, parts of bzip2) are held at 1800 MHz \
         by their power, so their PM speedup trails the unconstrained bar",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn capture_fraction_and_ordering_match_paper_shape() {
        let (rows, capture) = compute(test_ctx(), test_pool()).unwrap();
        assert_eq!(rows.len(), 26);
        // Headline corridor: paper reports 86%; accept 75–95%.
        assert!((0.75..=0.95).contains(&capture), "capture {capture}");
        // swim at the flat end, sixtrack at the steep end.
        let names: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("swim") < 6, "swim near the left, at {}", pos("swim"));
        assert!(pos("sixtrack") > 19, "sixtrack near the right, at {}", pos("sixtrack"));
        // Hot workloads are power-limited: PM speedup well below the
        // unconstrained bar.
        for hot in ["crafty", "perlbmk"] {
            let r = rows.iter().find(|r| r.benchmark == hot).unwrap();
            assert!(
                r.unconstrained_speedup - r.pm_speedup > 0.05,
                "{hot} should be throttled: pm {} vs max {}",
                r.pm_speedup,
                r.unconstrained_speedup
            );
        }
        // Everything else: PM within noise of the unconstrained bar.
        let r = rows.iter().find(|r| r.benchmark == "sixtrack").unwrap();
        assert!(r.unconstrained_speedup - r.pm_speedup < 0.02);
    }
}
