//! Static vs. online-adapted power model under PM (ROADMAP item 3).
//!
//! The model-error experiment shows where the offline Table II fit breaks:
//! workloads whose per-sample power sits watts away from the DPC line the
//! MS-Loops training set drew. This experiment runs plain `pm` and
//! `adaptive(pm)` — the RLS refit layer of [`aapm::adaptive`] — side by
//! side at the galgel deception limit and reports, per workload, the mean
//! per-sample model error each governor was actually operating with and
//! the cap-violation fraction it incurred. The expected shape: on the
//! phase-shifting deceiver the adaptive layer re-learns the hot regime
//! within a window and both its error and its violations drop, while on a
//! quiet MS-Loop-like cell (already on the training manifold) adaptation
//! is a no-op and nothing degrades.
//!
//! Model error is scored one-step-ahead against the model *in use* at
//! each sample: the fixed offline fit for static PM (recomputed from the
//! run trace), the live refit model for `adaptive(pm)` (recorded by the
//! layer itself as the `adapt.model_error_w` histogram before each
//! update).

use aapm::runtime::{Session, SimulationConfig};
use aapm::spec::{GovernorSpec, SpecModels};
use aapm_fuzz::generate;
use aapm_fuzz::scenario::ProgramSpec;
use aapm_platform::error::Result;
use aapm_platform::pstate::PStateTable;
use aapm_platform::units::Watts;
use aapm_platform::MachineConfig;
use aapm_telemetry::metrics::Metrics;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::sim_seed;
use crate::table::{f3, pct, TextTable};

/// Machine seed for every cell (the experiment compares governors, not
/// seeds, so one deterministic draw per workload is enough).
const SEED: u64 = 0xADA97;

/// The power limit both arms run under: the galgel deception point.
const LIMIT_W: f64 = 13.5;

/// Cap-violation window (samples), matching the actuator ablations.
const VIOLATION_WINDOW: usize = 10;

/// One workload cell's paired measurement.
#[derive(Debug, Clone)]
pub struct ArmComparison {
    /// Workload name.
    pub workload: String,
    /// Mean per-sample error of the static offline model, in watts.
    pub static_error_w: f64,
    /// Mean per-sample error of the live (refit) model, in watts.
    pub adaptive_error_w: f64,
    /// Static PM's cap-violation fraction.
    pub static_violations: f64,
    /// Adaptive PM's cap-violation fraction.
    pub adaptive_violations: f64,
    /// Refits the adaptive layer pushed over the run.
    pub refits: u64,
    /// Seed-model fallbacks (degenerate windows + outages).
    pub fallbacks: u64,
}

/// The three regimes the tentpole claim names: the phase-shifting
/// deceiver (the art/mcf-style regime the offline fit misses), a
/// generator-drawn adversarial program, and a quiet MS-Loop-like cell
/// that must not regress.
fn workloads() -> Vec<(&'static str, ProgramSpec)> {
    let drawn = generate::draw_scenarios(17, 1).remove(0).program;
    let quiet = ProgramSpec {
        name: "quiet-like".to_owned(),
        segments: vec![generate::quiet_segment()],
    };
    vec![
        ("phase-shift", generate::galgel_like_program()),
        ("fuzz-drawn", drawn),
        ("quiet-like", quiet),
    ]
}

/// Runs one governor spec over one workload and returns the median-free
/// single-seed report plus its metrics snapshot.
fn run_arm(
    spec: &GovernorSpec,
    models: &SpecModels,
    program: &ProgramSpec,
    table: &PStateTable,
) -> Result<(aapm::report::RunReport, aapm_telemetry::metrics::MetricsSnapshot)> {
    let machine = {
        let mut b = MachineConfig::builder();
        b.pstates(table.clone()).seed(SEED);
        b.build()?
    };
    let sim = SimulationConfig { seed: sim_seed(SEED), ..SimulationConfig::default() };
    let mut governor = spec.build(models)?;
    let metrics = Metrics::enabled();
    let (report, _stats) = Session::builder(machine, program.build()?)
        .config(sim)
        .governor(governor.as_mut())
        .observer(&metrics)
        .run()?;
    Ok((report, metrics.snapshot()))
}

/// Mean per-sample absolute error of the *fixed* offline model over a run
/// trace: what static PM was operating with at every interval.
fn static_trace_error(models: &SpecModels, report: &aapm::report::RunReport) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for record in report.trace.records() {
        let Some(dpc) = record.dpc else { continue };
        let Ok(estimate) = models.power.estimate(record.pstate, dpc) else { continue };
        sum += (estimate.watts() - record.power.watts()).abs();
        n += 1;
    }
    if n == 0 { 0.0 } else { sum / n as f64 }
}

/// Measures every workload cell, fanned over the pool.
///
/// # Errors
///
/// Propagates platform errors.
pub fn measure(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<ArmComparison>> {
    let models = ctx.spec_models();
    let models_ref = &models;
    let static_spec = GovernorSpec::Pm { limit_w: LIMIT_W };
    let adaptive_spec = GovernorSpec::Adaptive {
        forgetting: 0.98,
        window: 30,
        counters: 1,
        inner: Box::new(GovernorSpec::Pm { limit_w: LIMIT_W }),
    };
    let static_ref = &static_spec;
    let adaptive_ref = &adaptive_spec;
    let limit = Watts::new(LIMIT_W);
    let cells: Vec<_> = workloads()
        .into_iter()
        .map(|(name, program)| {
            move || -> Result<ArmComparison> {
                let (static_report, _) =
                    run_arm(static_ref, models_ref, &program, ctx.table())?;
                let (adaptive_report, adaptive_metrics) =
                    run_arm(adaptive_ref, models_ref, &program, ctx.table())?;
                let adaptive_error_w = adaptive_metrics
                    .histogram("adapt.model_error_w")
                    .map_or(0.0, |h| h.mean());
                Ok(ArmComparison {
                    workload: name.to_owned(),
                    static_error_w: static_trace_error(models_ref, &static_report),
                    adaptive_error_w,
                    static_violations: static_report.violation_fraction(limit, VIOLATION_WINDOW),
                    adaptive_violations: adaptive_report
                        .violation_fraction(limit, VIOLATION_WINDOW),
                    refits: adaptive_metrics.counter("adapt.refit_count"),
                    fallbacks: adaptive_metrics.counter("adapt.fallbacks")
                        + adaptive_metrics.counter("adapt.degenerate_windows"),
                })
            }
        })
        .collect();
    pool.run(cells).into_iter().collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "adaptive",
        "Static offline power model vs online RLS refit under PM at 13.5 W",
    );
    let comparisons = measure(ctx, pool)?;
    let mut table = TextTable::new(vec![
        "workload",
        "static_err_w",
        "adaptive_err_w",
        "static_viol",
        "adaptive_viol",
        "refits",
        "fallbacks",
    ]);
    for c in &comparisons {
        table.row(vec![
            c.workload.clone(),
            f3(c.static_error_w),
            f3(c.adaptive_error_w),
            pct(c.static_violations),
            pct(c.adaptive_violations),
            c.refits.to_string(),
            c.fallbacks.to_string(),
        ]);
    }
    out.table("comparison", table);
    if let Some(phase) = comparisons.iter().find(|c| c.workload == "phase-shift") {
        out.note(format!(
            "on the phase-shifting deceiver the refit layer cuts the mean \
             per-sample model error from {:.2} W to {:.2} W and the cap \
             violation fraction from {:.1}% to {:.1}%; quiet cells keep the \
             seed model (adaptation never degrades an on-manifold workload)",
            phase.static_error_w,
            phase.adaptive_error_w,
            phase.static_violations * 100.0,
            phase.adaptive_violations * 100.0,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    /// The tentpole's headline claim: adaptation recovers the
    /// off-manifold regime (lower error, no more violations) without
    /// degrading the quiet on-manifold cell.
    #[test]
    fn adaptive_recovers_the_deceptive_regime_without_degrading_quiet_cells() {
        let comparisons = measure(test_ctx(), test_pool()).unwrap();
        let phase = comparisons.iter().find(|c| c.workload == "phase-shift").unwrap();
        assert!(
            phase.adaptive_error_w < phase.static_error_w,
            "adaptive error {} must beat static {} on the deceiver",
            phase.adaptive_error_w,
            phase.static_error_w
        );
        assert!(
            phase.adaptive_violations <= phase.static_violations,
            "adaptive violations {} must not exceed static {}",
            phase.adaptive_violations,
            phase.static_violations
        );
        assert!(phase.refits > 0, "the deceiver must trigger refits");
        let quiet = comparisons.iter().find(|c| c.workload == "quiet-like").unwrap();
        assert!(
            quiet.adaptive_violations <= quiet.static_violations,
            "adaptation must not create violations on a quiet cell: {} vs {}",
            quiet.adaptive_violations,
            quiet.static_violations
        );
        assert!(
            quiet.adaptive_error_w <= quiet.static_error_w + 0.25,
            "adaptation must not inflate quiet-cell error: {} vs {}",
            quiet.adaptive_error_w,
            quiet.static_error_w
        );
    }

    /// Every comparison is finite and the fuzz-drawn cell completes.
    #[test]
    fn all_cells_produce_finite_statistics() {
        let comparisons = measure(test_ctx(), test_pool()).unwrap();
        assert_eq!(comparisons.len(), 3);
        for c in &comparisons {
            assert!(c.static_error_w.is_finite(), "{}: static error", c.workload);
            assert!(c.adaptive_error_w.is_finite(), "{}: adaptive error", c.workload);
            assert!((0.0..=1.0).contains(&c.static_violations), "{}", c.workload);
            assert!((0.0..=1.0).contains(&c.adaptive_violations), "{}", c.workload);
        }
    }
}
