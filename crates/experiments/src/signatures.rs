//! Per-benchmark counter signatures (the paper's §IV.A.2 discussion).
//!
//! The paper explains Figure 7's ordering with counter signatures:
//! memory-bound workloads show "relatively high DCU Miss Outstanding
//! cycles/cycle and/or Resource Stalls/cycle … high Memory Requests/cycle";
//! core-bound ones "low rates of DCU stalls, Resource Stalls and Memory
//! Requests"; the hottest have "both high Instructions Decoded rates and
//! L2 Request rates". This experiment tabulates exactly those rates for
//! every benchmark at 2 GHz, plus the eq.-3 class each sample stream maps
//! to.

use aapm_models::perf_model::WorkloadClass;
use aapm_platform::error::Result;
use aapm_platform::events::HardwareEvent;
use aapm_platform::machine::Machine;
use aapm_platform::units::Seconds;
use aapm_platform::MachineConfig;
use aapm_telemetry::daq::{DaqConfig, PowerDaq};
use aapm_telemetry::pmc::PmcDriver;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::table::{f3, TextTable};

/// One benchmark's mean counter signature at 2 GHz.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Benchmark name.
    pub benchmark: String,
    /// Retired IPC.
    pub ipc: f64,
    /// Decoded instructions per cycle.
    pub dpc: f64,
    /// DCU-miss-outstanding cycles per cycle.
    pub dcu: f64,
    /// Resource-stall cycles per cycle.
    pub resource_stalls: f64,
    /// DRAM requests per cycle.
    pub memory_requests: f64,
    /// L2 requests per cycle.
    pub l2_requests: f64,
    /// Mean measured power in watts.
    pub power_w: f64,
    /// The eq.-3 class of the mean sample.
    pub class: WorkloadClass,
}

/// Measures every benchmark's signature at 2 GHz.
///
/// # Errors
///
/// Propagates platform errors.
pub fn measure(ctx: &ExperimentContext, pool: &Pool) -> Result<Vec<Signature>> {
    let cells: Vec<_> = spec::suite()
        .into_iter()
        .map(|bench| move || -> Result<Signature> {
        let config = {
            let mut b = MachineConfig::builder();
            b.pstates(ctx.table().clone()).seed(0x51_6E);
            b.build()?
        };
        let mut machine = Machine::new(config, bench.program().clone());
        let mut daq = PowerDaq::new(DaqConfig::default(), 0x51_6E);
        let mut pmc = PmcDriver::new(vec![
            HardwareEvent::InstructionsRetired,
            HardwareEvent::InstructionsDecoded,
            HardwareEvent::DcuMissOutstanding,
            HardwareEvent::ResourceStalls,
            HardwareEvent::MemoryRequests,
            HardwareEvent::L2Requests,
        ]);
        // Warm the multiplexing rotation, then average across a window
        // long enough to cover multi-phase benchmarks.
        for _ in 0..6 {
            machine.tick(Seconds::from_millis(10.0));
            let _ = pmc.sample(&machine);
            let _ = daq.sample(&machine);
        }
        let samples = 200;
        let mut sums = [0.0f64; 7];
        for _ in 0..samples {
            machine.tick(Seconds::from_millis(10.0));
            let counters = pmc.sample(&machine);
            let power = daq.sample(&machine);
            sums[0] += counters.ipc().unwrap_or(0.0);
            sums[1] += counters.dpc().unwrap_or(0.0);
            sums[2] += counters.dcu().unwrap_or(0.0);
            sums[3] += counters.rate(HardwareEvent::ResourceStalls).unwrap_or(0.0);
            sums[4] += counters.rate(HardwareEvent::MemoryRequests).unwrap_or(0.0);
            sums[5] += counters.rate(HardwareEvent::L2Requests).unwrap_or(0.0);
            sums[6] += power.power.watts();
        }
        let n = f64::from(samples);
        let (ipc, dcu) = (sums[0] / n, sums[2] / n);
        Ok(Signature {
            benchmark: bench.name().to_owned(),
            ipc,
            dpc: sums[1] / n,
            dcu,
            resource_stalls: sums[3] / n,
            memory_requests: sums[4] / n,
            l2_requests: sums[5] / n,
            power_w: sums[6] / n,
            class: ctx.perf_model_paper().classify(ipc, dcu),
        })
        })
        .collect();
    pool.run(cells).into_iter().collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "signatures",
        "Per-benchmark counter signatures at 2 GHz (paper §IV.A.2 discussion)",
    );
    let mut signatures = measure(ctx, pool)?;
    signatures.sort_by(|a, b| b.dcu.total_cmp(&a.dcu));
    let mut table = TextTable::new(vec![
        "benchmark",
        "ipc",
        "dpc",
        "dcu_per_cyc",
        "res_stall_per_cyc",
        "mem_req_per_cyc",
        "l2_req_per_cyc",
        "power_w",
        "eq3_class",
    ]);
    for s in &signatures {
        table.row(vec![
            s.benchmark.clone(),
            f3(s.ipc),
            f3(s.dpc),
            f3(s.dcu),
            f3(s.resource_stalls),
            format!("{:.4}", s.memory_requests),
            format!("{:.4}", s.l2_requests),
            f3(s.power_w),
            match s.class {
                WorkloadClass::MemoryBound => "memory".into(),
                WorkloadClass::CoreBound => "core".into(),
            },
        ]);
    }
    out.table("signatures", table);
    out.note(
        "sorted by DCU-miss-outstanding rate: the paper's memory-bound list \
         heads the table with high memory-request rates, the core-bound \
         list trails it, and the hottest workloads combine high decode and \
         L2-request rates",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn signatures_match_the_papers_grouping() {
        let signatures = measure(test_ctx(), crate::test_support::test_pool()).unwrap();
        let by_name = |n: &str| signatures.iter().find(|s| s.benchmark == n).unwrap();
        // Paper: swim/lucas/equake/mcf/applu/art have high DCU and memory
        // requests; perlbmk/mesa/eon/crafty/sixtrack low.
        for memory in ["swim", "lucas", "equake", "mcf", "applu", "art"] {
            let s = by_name(memory);
            assert_eq!(s.class, WorkloadClass::MemoryBound, "{memory}");
            assert!(s.memory_requests > 0.001, "{memory} mem req {}", s.memory_requests);
        }
        for core in ["perlbmk", "mesa", "eon", "crafty", "sixtrack"] {
            let s = by_name(core);
            assert_eq!(s.class, WorkloadClass::CoreBound, "{core}");
            // Stall cycles per *instruction* well below the 1.21 threshold.
            assert!(s.dcu / s.ipc < 1.0, "{core} dcu/inst {}", s.dcu / s.ipc);
        }
        // The hottest workloads have the highest decode rates.
        let crafty = by_name("crafty");
        assert!(crafty.dpc > 1.8, "crafty decodes hot: {}", crafty.dpc);
    }
}
