//! Figure 9 — suite performance reduction and energy savings vs PS floor.
//!
//! For floors of 80/60/40/20 % the paper plots the suite's total
//! performance reduction (vs full-speed 2 GHz) and energy savings, with the
//! 600 MHz run as the bound. Key observations reproduced here: PS keeps the
//! suite reduction within each floor's allowance, and because p-states are
//! discrete the realized reduction sits below the allowed maximum.

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::ps_sweep::{self, Exponent, PsSweep};
use crate::runner::ps_floors;
use crate::table::{pct, TextTable};

/// Runs the experiment with a precomputed sweep.
pub fn run_with(sweep: &PsSweep) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig9",
        "Suite performance reduction & energy savings vs PS floor (paper Figure 9)",
    );
    let mut table = TextTable::new(vec![
        "floor",
        "allowed_reduction",
        "perf_reduction",
        "energy_savings",
    ]);
    for floor in ps_floors() {
        table.row(vec![
            pct(floor),
            pct(1.0 - floor),
            pct(sweep.suite_reduction(Exponent::Primary, floor)),
            pct(sweep.suite_savings(Exponent::Primary, floor)),
        ]);
    }
    // The 600 MHz bound.
    let t_ref: f64 = sweep.benchmarks.iter().map(|b| b.unconstrained.time_s).sum();
    let t_600: f64 = sweep.benchmarks.iter().map(|b| b.at_600mhz.time_s).sum();
    let e_ref: f64 = sweep.benchmarks.iter().map(|b| b.unconstrained.energy_j).sum();
    let e_600: f64 = sweep.benchmarks.iter().map(|b| b.at_600mhz.energy_j).sum();
    table.row(vec![
        "600MHz bound".into(),
        "-".into(),
        pct(1.0 - t_ref / t_600),
        pct(1.0 - e_600 / e_ref),
    ]);
    out.table("suite", table);
    out.note(format!(
        "at the 80% floor the suite loses {} for {} energy savings \
         (paper: ~10% loss for 19.2% savings; our mid-tier workloads scale \
         more strongly with frequency, so the loss lands higher while \
         staying within the allowed 20%)",
        pct(sweep.suite_reduction(Exponent::Primary, 0.8)),
        pct(sweep.suite_savings(Exponent::Primary, 0.8))
    ));
    out
}

/// Runs the experiment end to end.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &crate::pool::Pool) -> Result<ExperimentOutput> {
    Ok(run_with(&ps_sweep::compute(ctx, pool)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_sweep;

    #[test]
    fn suite_reduction_within_each_floor_allowance() {
        let sweep = test_sweep();
        for floor in ps_floors() {
            let reduction = sweep.suite_reduction(Exponent::Primary, floor);
            assert!(
                reduction <= (1.0 - floor) + 0.02,
                "floor {floor}: reduction {reduction} exceeds allowance"
            );
        }
    }

    #[test]
    fn savings_at_80_floor_in_paper_corridor() {
        let sweep = test_sweep();
        let savings = sweep.suite_savings(Exponent::Primary, 0.8);
        // Paper headline: 19.2%. Accept 15–25%.
        assert!((0.15..=0.25).contains(&savings), "savings {savings}");
    }

    #[test]
    fn reductions_monotone_in_floor() {
        let sweep = test_sweep();
        let mut last = 0.0;
        for floor in ps_floors() {
            let r = sweep.suite_reduction(Exponent::Primary, floor);
            assert!(r >= last - 0.01, "floor {floor}: {r} < {last}");
            last = r;
        }
    }
}
