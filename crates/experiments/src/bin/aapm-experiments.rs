//! Experiment driver: regenerate any table or figure of the paper.
//!
//! ```text
//! aapm-experiments <id> [--csv <dir>] [--jobs <n>]
//!                       [--trace-out <dir>] [--metrics-out <path>]
//! aapm-experiments all --csv results/ --jobs 4
//! aapm-experiments --replay-corpus [--corpus-dir corpus] [--jobs <n>] [--bless]
//! aapm-experiments --fuzz [--cases <n>] [--seed <s>] [--jobs <n>] [--minimize]
//! aapm-experiments --list
//! aapm-experiments --list-governors
//! ```
//!
//! `--jobs 1` forces the serial path (the determinism reference); the
//! default fans experiment cells over every available core. Each run also
//! writes `results/BENCH_suite.json` with wall-clock and pool statistics.
//! `--trace-out` enables the observability layer and writes one JSONL
//! event stream per simulation run; `--metrics-out` writes an aggregated
//! end-of-suite metrics snapshot. Both outputs are deterministic across
//! `--jobs` widths.
//!
//! `--replay-corpus` re-evaluates every committed adversarial fixture
//! under `corpus/` and byte-compares each fresh verdict line against the
//! recorded one; `--bless` rewrites fixtures whose verdicts drifted (the
//! "commit your shrunk failure" workflow). `--fuzz` draws scenarios from a
//! fixed seed, judges them against the property oracles, and fails on any
//! universal-property violation (panic, non-finite metric, conservation or
//! watchdog-liveness breach); cap/floor findings are reported as fixture
//! candidates. Both modes print one verdict line per item on stdout, in a
//! deterministic order independent of `--jobs`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aapm_experiments::pool::PoolStats;
use aapm_experiments::{run_by_id, ExperimentContext, Pool, RunObserver, ALL_IDS};

fn usage() {
    eprintln!(
        "usage: aapm-experiments <id>|all [--csv <dir>] [--jobs <n>] \
         [--trace-out <dir>] [--metrics-out <path>]"
    );
    eprintln!("       aapm-experiments --bench-machine [--out <path>]");
    eprintln!(
        "       aapm-experiments --replay-corpus [--corpus-dir <dir>] [--jobs <n>] [--bless]"
    );
    eprintln!(
        "       aapm-experiments --fuzz [--cases <n>] [--seed <s>] [--jobs <n>] [--minimize]"
    );
    eprintln!("       aapm-experiments --list");
    eprintln!("       aapm-experiments --list-governors");
}

/// Parses a `--jobs`-style positive integer, or reports why it can't.
fn parse_positive(flag: &str, value: &str) -> Result<usize, ExitCode> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => {
            eprintln!("{flag} wants a positive integer, got `{value}`");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Default worker count: every available core.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Replays the committed adversarial corpus and byte-compares verdicts.
fn replay_corpus_mode(args: &[String]) -> ExitCode {
    let mut dir = PathBuf::from("corpus");
    let mut jobs: Option<usize> = None;
    let mut bless = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corpus-dir" if i + 1 < args.len() => {
                dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--jobs" if i + 1 < args.len() => {
                match parse_positive("--jobs", &args[i + 1]) {
                    Ok(n) => jobs = Some(n),
                    Err(code) => return code,
                }
                i += 2;
            }
            "--bless" => {
                bless = true;
                i += 1;
            }
            other => {
                eprintln!("unknown --replay-corpus argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let entries = match aapm_fuzz::corpus::load_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("corpus error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if entries.is_empty() {
        eprintln!("no fixtures found under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let pool = Pool::new(jobs.unwrap_or_else(default_jobs));
    let cells: Vec<_> = entries
        .iter()
        .map(|entry| {
            let fixture = entry.fixture.clone();
            move || Ok(fixture.replay())
        })
        .collect();
    let start = Instant::now();
    let fresh = pool.run(cells);
    let mut mismatches = 0usize;
    let mut blessed = 0usize;
    for (entry, result) in entries.iter().zip(&fresh) {
        let verdict = match result {
            Ok(verdict) => verdict,
            Err(e) => {
                eprintln!("{}: replay cell failed: {e}", entry.file);
                return ExitCode::FAILURE;
            }
        };
        println!("{}: {verdict}", entry.file);
        if verdict == &entry.fixture.verdict {
            continue;
        }
        if bless {
            let updated = aapm_fuzz::corpus::Fixture {
                verdict: verdict.clone(),
                scenario: entry.fixture.scenario.clone(),
            };
            if let Err(e) = std::fs::write(dir.join(&entry.file), updated.to_json()) {
                eprintln!("failed to bless {}: {e}", entry.file);
                return ExitCode::FAILURE;
            }
            blessed += 1;
        } else {
            eprintln!(
                "verdict drift in {}:\n  recorded: {}\n  replayed: {verdict}",
                entry.file, entry.fixture.verdict
            );
            mismatches += 1;
        }
    }
    eprintln!(
        "corpus: {} fixture(s) replayed from {} in {:.2}s ({} job(s)), {}",
        entries.len(),
        dir.display(),
        start.elapsed().as_secs_f64(),
        pool.jobs(),
        if bless {
            format!("{blessed} blessed")
        } else {
            format!("{mismatches} mismatch(es)")
        },
    );
    if mismatches > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Draws adversarial scenarios from a fixed seed and judges each against
/// the property oracles.
fn fuzz_mode(args: &[String]) -> ExitCode {
    let mut cases = 48usize;
    let mut seed = 1u64;
    let mut jobs: Option<usize> = None;
    let mut shrink_findings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" if i + 1 < args.len() => {
                match parse_positive("--cases", &args[i + 1]) {
                    Ok(n) => cases = n,
                    Err(code) => return code,
                }
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                match args[i + 1].parse::<u64>() {
                    Ok(n) => seed = n,
                    Err(_) => {
                        eprintln!("--seed wants an unsigned integer, got `{}`", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--jobs" if i + 1 < args.len() => {
                match parse_positive("--jobs", &args[i + 1]) {
                    Ok(n) => jobs = Some(n),
                    Err(code) => return code,
                }
                i += 2;
            }
            "--minimize" => {
                shrink_findings = true;
                i += 1;
            }
            other => {
                eprintln!("unknown --fuzz argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let scenarios = aapm_fuzz::generate::draw_scenarios(seed, cases);
    let pool = Pool::new(jobs.unwrap_or_else(default_jobs));
    let cells: Vec<_> = scenarios
        .iter()
        .map(|scenario| {
            let scenario = scenario.clone();
            move || Ok(aapm_fuzz::oracle::evaluate(&scenario))
        })
        .collect();
    let start = Instant::now();
    let verdicts = pool.run(cells);
    let mut findings = 0usize;
    let mut hard_failures = 0usize;
    for (scenario, result) in scenarios.iter().zip(&verdicts) {
        let verdict = match result {
            Ok(verdict) => verdict,
            Err(e) => {
                eprintln!("{}: fuzz cell failed: {e}", scenario.name);
                return ExitCode::FAILURE;
            }
        };
        println!("{}: {}", scenario.name, verdict.render());
        let universal = verdict.universal_failures();
        if !universal.is_empty() {
            hard_failures += 1;
            eprintln!(
                "HARD FAILURE in {} ({}); shrinking the counterexample…",
                scenario.name,
                universal.join(", ")
            );
            let shrunk = aapm_fuzz::minimize::minimize(scenario, |s| {
                !aapm_fuzz::oracle::evaluate(s).universal_failures().is_empty()
            });
            eprintln!(
                "shrunk counterexample ({} segment(s)) — commit it under corpus/:\n{}",
                shrunk.program.segments.len(),
                aapm_fuzz::corpus::Fixture::record(shrunk).to_json()
            );
            continue;
        }
        let failed = verdict.failures();
        if let Some(first) = failed.first() {
            findings += 1;
            eprintln!("finding in {}: {} oracle failed", scenario.name, failed.join(", "));
            if shrink_findings {
                let property: &'static str = first;
                let shrunk = aapm_fuzz::minimize::minimize(scenario, |s| {
                    aapm_fuzz::oracle::evaluate(s).failures().contains(&property)
                });
                eprintln!(
                    "fixture candidate ({} segment(s)):\n{}",
                    shrunk.program.segments.len(),
                    aapm_fuzz::corpus::Fixture::record(shrunk).to_json()
                );
            }
        }
    }
    eprintln!(
        "fuzz: {cases} scenario(s) from seed {seed} in {:.2}s ({} job(s)): \
         {findings} finding(s), {hard_failures} hard failure(s)",
        start.elapsed().as_secs_f64(),
        pool.jobs(),
    );
    if hard_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the machine throughput benchmark and writes the report.
fn bench_machine_mode(args: &[String]) -> ExitCode {
    let mut out = Path::new("results").join("BENCH_machine.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown --bench-machine argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("benchmarking the simulator hot paths (micro benches + serial suite)…");
    let report = match aapm_experiments::bench_machine::run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench-machine failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", report.headline());
    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("machine bench report written to {}", out.display());
    ExitCode::SUCCESS
}

/// Writes `results/BENCH_suite.json` (hand-rolled JSON: flat numbers only).
fn write_bench_report(
    path: &Path,
    id: &str,
    stats: &PoolStats,
    train_wall: Duration,
    suite_wall: Duration,
    experiments: usize,
) -> std::io::Result<()> {
    let wall_s = suite_wall.as_secs_f64();
    let busy_s = stats.top_busy.as_secs_f64();
    let cells_per_sec = if wall_s > 0.0 { stats.cells_run as f64 / wall_s } else { 0.0 };
    // Serial wall-clock ≈ the sum of top-level cell times, so busy/wall
    // estimates the speedup without paying for a reference serial run.
    let speedup = if wall_s > 0.0 { busy_s / wall_s } else { 1.0 };
    let mean_cell_ms = if stats.cells_run > 0 {
        stats.cell_busy.as_secs_f64() * 1000.0 / stats.cells_run as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"experiment\": \"{id}\",\n  \"jobs\": {},\n  \"suite_wall_s\": {wall_s:.3},\n  \
         \"train_wall_s\": {:.3},\n  \"experiments\": {experiments},\n  \
         \"cells_run\": {},\n  \"cells_failed\": {},\n  \"top_level_cells\": {},\n  \
         \"cells_per_sec\": {cells_per_sec:.2},\n  \"top_cell_busy_s\": {busy_s:.3},\n  \
         \"longest_top_cell_s\": {:.3},\n  \"cell_busy_s\": {:.3},\n  \
         \"mean_cell_ms\": {mean_cell_ms:.3},\n  \"peak_queue_depth\": {},\n  \
         \"estimated_speedup_vs_serial\": {speedup:.2}\n}}\n",
        stats.jobs,
        train_wall.as_secs_f64(),
        stats.cells_run,
        stats.cells_failed,
        stats.top_cells,
        stats.longest_top_cell.as_secs_f64(),
        stats.cell_busy.as_secs_f64(),
        stats.peak_queue_depth,
    );
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, json)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if args[0] == "--list" {
        for id in ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "--list-governors" {
        let width =
            aapm::spec::REGISTRY.iter().map(|e| e.kind.len()).max().unwrap_or(0);
        for entry in aapm::spec::REGISTRY {
            let params =
                if entry.params.is_empty() { String::new() } else { format!(" {{{}}}", entry.params) };
            println!("{:width$}{params}  — {}", entry.kind, entry.description);
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "--bench-machine" {
        return bench_machine_mode(&args[1..]);
    }
    if args[0] == "--replay-corpus" {
        return replay_corpus_mode(&args[1..]);
    }
    if args[0] == "--fuzz" {
        return fuzz_mode(&args[1..]);
    }
    let id = args[0].clone();
    let mut csv_dir: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" if i + 1 < args.len() => {
                csv_dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--trace-out" if i + 1 < args.len() => {
                trace_out = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--metrics-out" if i + 1 < args.len() => {
                metrics_out = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--jobs" if i + 1 < args.len() => {
                match args[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs wants a positive integer, got `{}`", args[i + 1]);
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let observer = (trace_out.is_some() || metrics_out.is_some())
        .then(|| Arc::new(RunObserver::new(trace_out.clone())));
    let jobs_count = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let pool = match &observer {
        Some(observer) => Pool::with_observer(jobs_count, Arc::clone(observer)),
        None => Pool::new(jobs_count),
    };

    eprintln!("training models on the simulated platform…");
    let train_start = Instant::now();
    let ctx = match ExperimentContext::train() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let train_wall = train_start.elapsed();
    let trained = ctx.perf_fit();
    eprintln!(
        "trained in {:.2}s: eq-3 threshold {:.2}, exponent {:.2}; running `{id}` with {} job(s)…",
        train_wall.as_secs_f64(),
        trained.params.dcu_threshold,
        trained.params.exponent,
        pool.jobs(),
    );

    let suite_start = Instant::now();
    match run_by_id(&ctx, &pool, &id) {
        Ok(outputs) => {
            let suite_wall = suite_start.elapsed();
            for output in &outputs {
                println!("{output}");
                if let Some(dir) = &csv_dir {
                    if let Err(e) = output.write_csvs(dir) {
                        eprintln!("failed to write CSVs for {}: {e}", output.id);
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(dir) = &csv_dir {
                eprintln!("CSVs written under {}", dir.display());
            }
            let stats = pool.stats();
            eprintln!(
                "`{id}`: {} experiment(s) in {:.2}s wall / {:.2}s cell-busy \
                 ({} cells, {} jobs, est. {:.2}x vs serial)",
                outputs.len(),
                suite_wall.as_secs_f64(),
                stats.top_busy.as_secs_f64(),
                stats.cells_run,
                stats.jobs,
                if suite_wall.as_secs_f64() > 0.0 {
                    stats.top_busy.as_secs_f64() / suite_wall.as_secs_f64()
                } else {
                    1.0
                },
            );
            let report = Path::new("results").join("BENCH_suite.json");
            if let Err(e) =
                write_bench_report(&report, &id, &stats, train_wall, suite_wall, outputs.len())
            {
                eprintln!("failed to write {}: {e}", report.display());
                return ExitCode::FAILURE;
            }
            eprintln!("pool/timing report written to {}", report.display());
            if let Some(observer) = &observer {
                if let Err(e) = observer.finish(metrics_out.as_deref()) {
                    eprintln!("failed to write observability output: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "observability: {} run(s) observed{}{}",
                    observer.runs_observed(),
                    trace_out
                        .as_ref()
                        .map(|d| format!(", traces under {}", d.display()))
                        .unwrap_or_default(),
                    metrics_out
                        .as_ref()
                        .map(|p| format!(", metrics snapshot at {}", p.display()))
                        .unwrap_or_default(),
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
