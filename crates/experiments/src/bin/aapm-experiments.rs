//! Experiment driver: regenerate any table or figure of the paper.
//!
//! ```text
//! aapm-experiments <id> [--csv <dir>]
//! aapm-experiments all --csv results/
//! aapm-experiments --list
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use aapm_experiments::{run_by_id, ExperimentContext, ALL_IDS};

fn usage() {
    eprintln!("usage: aapm-experiments <id>|all [--csv <dir>]");
    eprintln!("       aapm-experiments --list");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if args[0] == "--list" {
        for id in ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let id = args[0].clone();
    let mut csv_dir: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" if i + 1 < args.len() => {
                csv_dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("training models on the simulated platform…");
    let ctx = match ExperimentContext::train() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trained = ctx.perf_fit();
    eprintln!(
        "trained: eq-3 threshold {:.2}, exponent {:.2}; running `{id}`…",
        trained.params.dcu_threshold, trained.params.exponent
    );

    match run_by_id(&ctx, &id) {
        Ok(outputs) => {
            for output in &outputs {
                println!("{output}");
                if let Some(dir) = &csv_dir {
                    if let Err(e) = output.write_csvs(dir) {
                        eprintln!("failed to write CSVs for {}: {e}", output.id);
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(dir) = &csv_dir {
                eprintln!("CSVs written under {}", dir.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
