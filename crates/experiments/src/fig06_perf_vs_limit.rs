//! Figure 6 — suite performance vs power limit: PM dynamic clocking vs
//! worst-case static clocking.
//!
//! For each of the eight power limits, the whole suite runs under PM and
//! under the Table-IV static frequency; performance is normalized as
//! `unconstrained suite time / constrained suite time`. The paper's shape:
//! the PM line dominates the static dots everywhere, and static approaches
//! PM only where the limit sits just above a fixed frequency's own
//! worst-case power.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_platform::pstate::PStateId;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{
    median_run_spec, pm_power_limits, static_frequency_for_limit, worst_case_power_curve,
};
use crate::table::{f3, TextTable};

/// Suite execution time under a registry-described governor, with one pool
/// cell per benchmark.
fn suite_time(ctx: &ExperimentContext, pool: &Pool, governor: &GovernorSpec) -> Result<f64> {
    let benches = spec::suite();
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = benches
        .iter()
        .map(|bench| {
            move || {
                let report =
                    median_run_spec(pool, governor, models_ref, bench.program(), ctx.table(), &[])?;
                Ok(report.execution_time.seconds())
            }
        })
        .collect();
    let times = pool.run(cells).into_iter().collect::<Result<Vec<f64>>>()?;
    Ok(times.into_iter().sum())
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig6",
        "Suite performance vs power limit: PM vs static clocking (paper Figure 6)",
    );
    let curve = worst_case_power_curve(pool, ctx.table())?;
    let t_unconstrained = suite_time(ctx, pool, &GovernorSpec::Unconstrained)?;

    let mut table = TextTable::new(vec![
        "limit_w",
        "pm_normalized_perf",
        "static_mhz",
        "static_normalized_perf",
        "pm_advantage",
    ]);
    let limits = pm_power_limits();
    let curve_ref = &curve;
    let cells: Vec<_> = limits
        .iter()
        .map(|&limit| {
            move || -> Result<(f64, PStateId, f64)> {
                let pm = GovernorSpec::Pm { limit_w: limit.watts().watts() };
                let t_pm = suite_time(ctx, pool, &pm)?;

                let static_id = static_frequency_for_limit(curve_ref, ctx.table(), limit);
                let static_clock = GovernorSpec::StaticClock { pstate: static_id.index() };
                let t_static = suite_time(ctx, pool, &static_clock)?;
                Ok((t_pm, static_id, t_static))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;

    let mut pm_always_wins = true;
    for (limit, (t_pm, static_id, t_static)) in limits.iter().zip(results) {
        let pm_perf = t_unconstrained / t_pm;
        let static_perf = t_unconstrained / t_static;
        pm_always_wins &= pm_perf >= static_perf - 1e-6;
        table.row(vec![
            format!("{:.1}", limit.watts().watts()),
            f3(pm_perf),
            ctx.table().get(static_id)?.frequency().mhz().to_string(),
            f3(static_perf),
            f3(pm_perf / static_perf),
        ]);
    }
    out.table("performance_vs_limit", table);
    out.note(format!(
        "PM dominates static clocking at every limit: {pm_always_wins} \
         (paper: static approaches dynamic only when the limit is near a \
         fixed frequency's peak power)"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn pm_dominates_static_at_every_limit() {
        let out = run(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<f64>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse::<f64>().unwrap()).collect())
            .collect();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row[1] >= row[3] - 1e-6, "PM {} < static {} at {} W", row[1], row[3], row[0]);
        }
        // Performance falls (weakly) as limits tighten, for both schemes.
        for pair in rows.windows(2) {
            assert!(pair[1][1] <= pair[0][1] + 1e-6, "PM perf must not rise as limit tightens");
            assert!(pair[1][3] <= pair[0][3] + 1e-6);
        }
        // At the loosest limit PM is close to unconstrained performance.
        assert!(rows[0][1] > 0.9, "PM at 17.5 W achieves {} of peak", rows[0][1]);
    }
}
