//! Fault matrix: governor robustness under injected telemetry/actuator
//! faults.
//!
//! The paper's governors ran against real hardware whose measurement chain
//! (DAQ, PMC driver, thermal diode) and actuation path (p-state MSR writes)
//! can all fail transiently. This experiment sweeps a common fault rate
//! across PM, PS, and watchdog-wrapped PM on ammp and reports how limit
//! adherence and performance degrade: the graceful-degradation paths should
//! hold adherence close to the fault-free baseline up to ~10 % dropout,
//! trading a bounded amount of performance instead.

use aapm::limits::PowerLimit;
use aapm::report::RunReport;
use aapm::runtime::{Session, SimulationConfig};
use aapm::spec::{GovernorSpec, SpecModels};
use aapm_platform::error::Result;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::PStateTable;
use aapm_platform::MachineConfig;
use aapm_telemetry::faults::{FaultConfig, FaultStats};
use aapm_telemetry::metrics::Metrics;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{sim_seed, RUN_SEEDS};
use crate::table::{pct, TextTable};

/// Fault rates swept (applied to power, thermal, and PMC channels; the
/// actuation-ignore rate runs at half this).
pub const DROPOUT_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

/// The PM power limit used throughout the matrix.
const PM_LIMIT_W: f64 = 12.5;

/// The PS performance floor used throughout the matrix.
const PS_FLOOR: f64 = 0.6;

fn fault_config(rate: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        power_dropout_rate: rate,
        thermal_dropout_rate: rate,
        pmc_missed_rate: rate,
        actuation_ignored_rate: rate / 2.0,
        ..FaultConfig::default()
    }
}

/// Median-execution-time faulted run over the paper's three seeds, fanned
/// out over the pool. The governor is built fresh per seed from `spec`.
fn median_faulted_run(
    pool: &Pool,
    spec: &GovernorSpec,
    models: &SpecModels,
    program: &PhaseProgram,
    table: &PStateTable,
    rate: f64,
) -> Result<(RunReport, FaultStats)> {
    let observer = pool.observer().cloned();
    let spec_json = spec.to_json();
    let spec_json = spec_json.as_str();
    let cells: Vec<_> = RUN_SEEDS
        .into_iter()
        .map(|seed| {
            let observer = observer.clone();
            move || -> Result<(RunReport, FaultStats)> {
                let machine = {
                    let mut b = MachineConfig::builder();
                    b.pstates(table.clone()).seed(seed);
                    b.build()?
                };
                let sim = SimulationConfig {
                    seed: sim_seed(seed),
                    faults: fault_config(rate, seed ^ 0xFA17),
                    ..SimulationConfig::default()
                };
                let mut governor = spec.build(models)?;
                let metrics =
                    if observer.is_some() { Metrics::enabled() } else { Metrics::disabled() };
                let (report, stats) = Session::builder(machine, program.clone())
                    .config(sim)
                    .governor(governor.as_mut())
                    .observer(&metrics)
                    .run()?;
                if let Some(observer) = &observer {
                    let label = format!(
                        "{}-{}-r{:.2}-s{seed}",
                        report.workload, report.governor, rate
                    );
                    observer.observe_run_with_spec(&label, &metrics, Some(spec_json));
                }
                Ok((report, stats))
            }
        })
        .collect();
    let mut results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    results.sort_by(|(a, _), (b, _)| {
        a.execution_time.seconds().total_cmp(&b.execution_time.seconds())
    });
    Ok(results.swap_remove(results.len() / 2))
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fault-matrix",
        "governor limit adherence and slowdown under injected telemetry/actuator faults",
    );
    let ammp = spec::by_name("ammp").expect("ammp is in the suite");
    let limit = PowerLimit::new(PM_LIMIT_W).expect("valid limit");

    let mut table =
        TextTable::new(vec!["governor", "dropout", "violations", "slowdown", "telemetry_losses"]);
    // One cell per (governor, rate); per-governor baselines (rate 0.0) are
    // resolved at merge time, so the cells stay independent.
    let governor_specs = [
        GovernorSpec::Pm { limit_w: PM_LIMIT_W },
        GovernorSpec::Ps { floor: PS_FLOOR },
        GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::Pm { limit_w: PM_LIMIT_W }) },
    ];
    let models = ctx.spec_models();
    let (ammp_ref, specs_ref, models_ref) = (&ammp, &governor_specs, &models);
    let mut cells = Vec::new();
    for governor_spec in specs_ref {
        for rate in DROPOUT_RATES {
            cells.push(move || -> Result<(f64, f64, u64)> {
                let (report, stats) = median_faulted_run(
                    pool,
                    governor_spec,
                    models_ref,
                    ammp_ref.program(),
                    ctx.table(),
                    rate,
                )?;
                Ok((
                    report.execution_time.seconds(),
                    report.violation_fraction(limit.watts(), 10),
                    stats.telemetry_losses(),
                ))
            });
        }
    }
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (g, governor_spec) in governor_specs.iter().enumerate() {
        let governor_name = governor_spec.governor_name();
        let per_rate = &results[g * DROPOUT_RATES.len()..(g + 1) * DROPOUT_RATES.len()];
        let baseline = per_rate[0].0;
        for (rate, &(time, violations, losses)) in DROPOUT_RATES.into_iter().zip(per_rate) {
            let slowdown = time / baseline - 1.0;
            table.row(vec![
                governor_name.clone(),
                pct(rate),
                pct(violations),
                pct(slowdown),
                losses.to_string(),
            ]);
        }
    }
    out.table("matrix", table);
    out.note(format!(
        "faults: power/thermal/PMC dropout at the listed rate, actuator writes \
         ignored at half of it; PM limit {PM_LIMIT_W} W, PS floor {PS_FLOOR}; \
         adherence should degrade gracefully (not collapse) up to 10 % dropout"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn adherence_degrades_gracefully_up_to_ten_percent_dropout() {
        let out = run(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 3 * DROPOUT_RATES.len());
        let parse_pct =
            |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        for row in &rows {
            let (gov, rate) = (row[0].as_str(), parse_pct(&row[1]));
            let violations = parse_pct(&row[2]);
            let slowdown = parse_pct(&row[3]);
            let losses: u64 = row[4].parse().unwrap();
            if rate == 0.0 {
                assert_eq!(losses, 0, "{gov}: zero rate must inject nothing");
                assert!(
                    slowdown.abs() < 1e-12,
                    "{gov}: zero rate is its own baseline"
                );
            } else {
                assert!(losses > 0, "{gov} at {rate}: faults must be injected");
            }
            // PM's limit-adherence contract: violations stay bounded near
            // the fault-free level (the paper sees ~0 on ammp) at every
            // dropout rate — degradation must be graceful, not a collapse.
            if gov != "ps" {
                assert!(
                    violations < 0.05,
                    "{gov} at {rate}: violations {violations} not graceful"
                );
            }
            // Losing telemetry may cost performance but must stay bounded.
            assert!(
                slowdown < 0.5,
                "{gov} at {rate}: slowdown {slowdown} out of bounds"
            );
        }
    }
}
