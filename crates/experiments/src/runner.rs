//! Run orchestration shared by all experiments.
//!
//! Implements the paper's methodology details: each (workload, governor)
//! pair runs three times with different seeds and the run with the median
//! execution time is reported; static-clocking frequencies are derived from
//! the worst-case FMA-256K power curve (Tables III/IV).
//!
//! [`median_run`] fans its seed runs out over a [`Pool`]: every seed builds
//! a fresh `Machine`, DAQ, and governor, so the cells are fully isolated
//! and their results are merged in deterministic submission order.
//! [`worst_case_power_curve`] instead groups its eight ungoverned
//! same-program/same-cadence p-state cells into a single [`MachineBatch`]
//! and steps them in lockstep — governed runs cannot batch (the governor
//! couples each lane's control decisions to its own observations), so only
//! the ungoverned curve takes the batched path.

use aapm::governor::Governor;
use aapm::limits::PowerLimit;
use aapm::report::RunReport;
use aapm::runtime::{ScheduledCommand, Session, SimulationConfig};
use aapm::spec::{GovernorSpec, SpecModels};
use aapm_telemetry::metrics::Metrics;
use aapm_platform::batch::MachineBatch;
use aapm_platform::error::{PlatformError, Result};
use aapm_platform::machine::Machine;
use aapm_platform::program::PhaseProgram;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_platform::units::{MegaHertz, Seconds, Watts};
use aapm_platform::MachineConfig;
use aapm_telemetry::daq::{DaqConfig, PowerDaq};
use aapm_workloads::characterize::{characterize_with_budget, CharacterizedLoop};
use aapm_workloads::footprint::Footprint;
use aapm_workloads::loops::MicroLoop;

use crate::pool::Pool;

/// Seeds for the paper's "execute three times, report the median" protocol.
pub const RUN_SEEDS: [u64; 3] = [11, 23, 47];

/// Salt XORed into a machine seed to derive the simulation-runtime seed,
/// so the machine's process variation and the DAQ's measurement noise draw
/// from decorrelated streams.
pub const SIM_SEED_SALT: u64 = 0x5EED;

/// Derives the simulation-runtime seed from a machine seed.
///
/// Every harness path — [`median_run`], the fault matrix, ad-hoc traces —
/// must derive its [`SimulationConfig::seed`] through this helper so the
/// seed streams cannot drift apart between call sites.
#[must_use]
pub fn sim_seed(machine_seed: u64) -> u64 {
    machine_seed ^ SIM_SEED_SALT
}

/// Runs one workload under a fresh governor per seed (fanned out over the
/// pool) and returns the run with the median execution time.
///
/// `make_governor` is called once per seed so each run starts from clean
/// governor state; it must be callable from multiple worker threads.
///
/// # Errors
///
/// Propagates platform errors from any run, and returns
/// [`PlatformError::NonFiniteMeasurement`] when any seed's execution time
/// is NaN or ±∞ (no meaningful median exists then).
pub fn median_run(
    pool: &Pool,
    make_governor: &(dyn Fn() -> Box<dyn Governor> + Sync),
    program: &PhaseProgram,
    table: &PStateTable,
    commands: &[ScheduledCommand],
) -> Result<RunReport> {
    median_run_impl(pool, &|| Ok(make_governor()), None, program, table, commands)
}

/// [`median_run`] for a registry-described governor: the fresh governor
/// per seed is built from `spec` against `models`, and the spec's JSON
/// form is recorded as a `run_spec` header in each run's `--trace-out`
/// stream. Experiments should prefer this entry point; the closure-based
/// [`median_run`] remains for configurations the spec grammar cannot
/// express (ablation-specific tunables).
///
/// # Errors
///
/// As [`median_run`], plus spec parameter validation.
pub fn median_run_spec(
    pool: &Pool,
    spec: &GovernorSpec,
    models: &SpecModels,
    program: &PhaseProgram,
    table: &PStateTable,
    commands: &[ScheduledCommand],
) -> Result<RunReport> {
    let spec_json = spec.to_json();
    median_run_impl(pool, &|| spec.build(models), Some(&spec_json), program, table, commands)
}

fn median_run_impl(
    pool: &Pool,
    make_governor: &(dyn Fn() -> Result<Box<dyn Governor>> + Sync),
    spec_json: Option<&str>,
    program: &PhaseProgram,
    table: &PStateTable,
    commands: &[ScheduledCommand],
) -> Result<RunReport> {
    let observer = pool.observer().cloned();
    let cells: Vec<_> = RUN_SEEDS
        .into_iter()
        .map(|seed| {
            let observer = observer.clone();
            move || -> Result<RunReport> {
                let machine = {
                    let mut b = MachineConfig::builder();
                    b.pstates(table.clone()).seed(seed);
                    b.build()?
                };
                let sim =
                    SimulationConfig { seed: sim_seed(seed), ..SimulationConfig::default() };
                let mut governor = make_governor()?;
                // Metrics are enabled only when an observer is attached, so
                // un-observed suites pay nothing.
                let metrics =
                    if observer.is_some() { Metrics::enabled() } else { Metrics::disabled() };
                let (report, _stats) = Session::builder(machine, program.clone())
                    .config(sim)
                    .governor(governor.as_mut())
                    .commands(commands)
                    .observer(&metrics)
                    .run()?;
                if let Some(observer) = &observer {
                    let label =
                        format!("{}-{}-s{seed}", report.workload, report.governor);
                    observer.observe_run_with_spec(&label, &metrics, spec_json);
                }
                Ok(report)
            }
        })
        .collect();
    let reports = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    select_median(reports)
}

/// Picks the median-execution-time report out of a set of seed runs.
///
/// # Errors
///
/// Returns [`PlatformError::NonFiniteMeasurement`] when any execution time
/// is NaN or ±∞ — a garbage median must not silently enter the results.
fn select_median(mut reports: Vec<RunReport>) -> Result<RunReport> {
    for report in &reports {
        let time = report.execution_time.seconds();
        if !time.is_finite() {
            return Err(PlatformError::NonFiniteMeasurement {
                quantity: "execution time",
                value: time,
            });
        }
    }
    reports
        .sort_by(|a, b| a.execution_time.seconds().total_cmp(&b.execution_time.seconds()));
    Ok(reports.swap_remove(reports.len() / 2))
}

/// Measures the FMA-256K worst-case power at every p-state (our Table III):
/// mean measured power over a window of settled 10 ms samples.
///
/// All eight p-state cells run the same program at the same 10 ms cadence
/// with no governor, so they batch: one [`MachineBatch`] steps the lanes in
/// lockstep as a single pool cell. Each lane's tick/sample sequence is
/// exactly the scalar per-cell loop's (the batch is bit-identical to solo
/// stepping, and each lane's DAQ draws from its own noise stream), so the
/// curve matches the old fanned-out implementation byte for byte.
///
/// # Errors
///
/// Propagates platform errors.
pub fn worst_case_power_curve(pool: &Pool, table: &PStateTable) -> Result<Vec<(MegaHertz, Watts)>> {
    let fma: CharacterizedLoop =
        characterize_with_budget(MicroLoop::Fma, Footprint::L2, 4_000_000_000)?;
    let fma = &fma;
    let cell = move || -> Result<Vec<(MegaHertz, Watts)>> {
        let mut frequencies = Vec::new();
        let mut machines = Vec::new();
        let mut daqs = Vec::new();
        for (pstate, state) in table.iter() {
            frequencies.push(state.frequency());
            let machine_config = {
                let mut b = MachineConfig::builder();
                b.pstates(table.clone()).initial_pstate(pstate).seed(0xFA_256);
                b.build()?
            };
            machines.push(Machine::new(machine_config, fma.program()));
            daqs.push(PowerDaq::new(DaqConfig::default(), 0xFA_256 ^ pstate.index() as u64));
        }
        let mut batch = MachineBatch::new(machines);
        let tick = Seconds::from_millis(10.0);
        // Settle, then average 50 samples per lane.
        for _ in 0..5 {
            batch.tick_all(tick);
            for (lane, daq) in daqs.iter_mut().enumerate() {
                let _ = daq.sample(batch.sync_lane(lane));
            }
        }
        let samples = 50;
        let mut sums = vec![0.0; daqs.len()];
        for _ in 0..samples {
            batch.tick_all(tick);
            for (lane, daq) in daqs.iter_mut().enumerate() {
                sums[lane] += daq.sample(batch.sync_lane(lane)).power.watts();
            }
        }
        Ok(frequencies
            .into_iter()
            .zip(sums)
            .map(|(frequency, sum)| (frequency, Watts::new(sum / f64::from(samples))))
            .collect())
    };
    pool.run(vec![cell]).into_iter().next().expect("one batched cell was submitted")
}

/// Derives the static-clocking frequency for each power limit (our
/// Table IV): the highest p-state whose worst-case power stays at or below
/// the limit. Falls back to the lowest state when even it exceeds the
/// limit.
pub fn static_frequency_for_limit(
    curve: &[(MegaHertz, Watts)],
    table: &PStateTable,
    limit: PowerLimit,
) -> PStateId {
    let mut choice = table.lowest();
    for (idx, (_, watts)) in curve.iter().enumerate() {
        if *watts <= limit.watts() {
            choice = PStateId::new(idx);
        }
    }
    choice
}

/// The eight power limits of the paper's PM evaluation: 17.5 W down to
/// 10.5 W in 1 W steps.
pub fn pm_power_limits() -> Vec<PowerLimit> {
    (0..8)
        .map(|i| PowerLimit::new(17.5 - i as f64).expect("limits are positive"))
        .collect()
}

/// The four performance floors of the paper's PS evaluation.
pub fn ps_floors() -> Vec<f64> {
    vec![0.8, 0.6, 0.4, 0.2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapm::baselines::Unconstrained;
    use aapm_platform::phase::PhaseDescriptor;

    fn program() -> PhaseProgram {
        let phase = PhaseDescriptor::builder("w")
            .instructions(400_000_000)
            .core_cpi(0.8)
            .build()
            .unwrap();
        PhaseProgram::from_phase(phase)
    }

    #[test]
    fn median_run_is_deterministic() {
        let table = PStateTable::pentium_m_755();
        let factory = || Box::new(Unconstrained::new()) as Box<dyn Governor>;
        let pool = Pool::serial();
        let a = median_run(&pool, &factory, &program(), &table, &[]).unwrap();
        let b = median_run(&pool, &factory, &program(), &table, &[]).unwrap();
        assert_eq!(a.execution_time, b.execution_time);
        assert!(a.completed);
    }

    #[test]
    fn median_run_matches_across_pool_widths() {
        let table = PStateTable::pentium_m_755();
        let factory = || Box::new(Unconstrained::new()) as Box<dyn Governor>;
        let serial = median_run(&Pool::new(1), &factory, &program(), &table, &[]).unwrap();
        let parallel = median_run(&Pool::new(8), &factory, &program(), &table, &[]).unwrap();
        assert_eq!(serial.execution_time, parallel.execution_time);
        assert_eq!(serial.measured_energy, parallel.measured_energy);
        assert_eq!(serial.transitions, parallel.transitions);
    }

    #[test]
    fn spec_runs_match_factory_runs() {
        let table = PStateTable::pentium_m_755();
        let factory = || Box::new(Unconstrained::new()) as Box<dyn Governor>;
        let pool = Pool::serial();
        let a = median_run(&pool, &factory, &program(), &table, &[]).unwrap();
        let b = median_run_spec(
            &pool,
            &GovernorSpec::Unconstrained,
            &SpecModels::default(),
            &program(),
            &table,
            &[],
        )
        .unwrap();
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.measured_energy, b.measured_energy);
        assert_eq!(a.governor, b.governor);
    }

    #[test]
    fn sim_seed_is_the_documented_convention() {
        assert_eq!(sim_seed(0), SIM_SEED_SALT);
        assert_eq!(sim_seed(0x5EED), 0);
        for seed in RUN_SEEDS {
            assert_eq!(sim_seed(seed), seed ^ 0x5EED);
            assert_eq!(sim_seed(sim_seed(seed)), seed, "XOR salt must be an involution");
        }
    }

    #[test]
    fn select_median_rejects_non_finite_times() {
        let table = PStateTable::pentium_m_755();
        let factory = || Box::new(Unconstrained::new()) as Box<dyn Governor>;
        let pool = Pool::serial();
        let good = median_run(&pool, &factory, &program(), &table, &[]).unwrap();
        let inf = Seconds::new(f64::INFINITY);
        // `Seconds::new` rejects NaN, but arithmetic can still produce one.
        let nan = inf - inf;
        for bad_time in [nan, inf, Seconds::new(f64::NEG_INFINITY)] {
            let mut bad = good.clone();
            bad.execution_time = bad_time;
            let result = select_median(vec![good.clone(), bad, good.clone()]);
            match result {
                Err(PlatformError::NonFiniteMeasurement { quantity, .. }) => {
                    assert_eq!(quantity, "execution time");
                }
                other => panic!("expected NonFiniteMeasurement, got {other:?}"),
            }
        }
    }

    #[test]
    fn worst_case_curve_is_monotone_and_matches_table_iii_scale() {
        let table = PStateTable::pentium_m_755();
        let curve = worst_case_power_curve(&Pool::serial(), &table).unwrap();
        assert_eq!(curve.len(), 8);
        let mut last = Watts::ZERO;
        for &(_, w) in &curve {
            assert!(w > last, "worst-case power must grow with frequency");
            last = w;
        }
        // Paper Table III: 3.86 W at 600 MHz, 17.78 W at 2 GHz. The
        // simulated platform should land within ~15 %.
        let low = curve[0].1.watts();
        let high = curve[7].1.watts();
        assert!((low - 3.86).abs() < 0.6, "600 MHz worst case {low:.2} vs paper 3.86");
        assert!((high - 17.78).abs() < 2.7, "2 GHz worst case {high:.2} vs paper 17.78");
    }

    #[test]
    fn static_frequencies_follow_the_curve() {
        let table = PStateTable::pentium_m_755();
        let curve = worst_case_power_curve(&Pool::serial(), &table).unwrap();
        // Tighter limits must never pick higher frequencies.
        let mut last = usize::MAX;
        for limit in pm_power_limits() {
            let id = static_frequency_for_limit(&curve, &table, limit);
            assert!(id.index() <= last);
            last = id.index();
        }
        // An absurdly low limit falls back to the lowest state.
        let floor =
            static_frequency_for_limit(&curve, &table, PowerLimit::new(0.1).unwrap());
        assert_eq!(floor, table.lowest());
    }

    #[test]
    fn limits_and_floors_match_paper() {
        let limits = pm_power_limits();
        assert_eq!(limits.len(), 8);
        assert!((limits[0].watts().watts() - 17.5).abs() < 1e-12);
        assert!((limits[7].watts().watts() - 10.5).abs() < 1e-12);
        assert_eq!(ps_floors(), vec![0.8, 0.6, 0.4, 0.2]);
    }
}
