//! Figure 5 — PerformanceMaximizer controlling `ammp`.
//!
//! The paper's figure shows three runs of `ammp`: unconstrained 2 GHz
//! operation and PM with 14.5 W and 10.5 W limits, with the frequency
//! modulating to workload demands. This experiment reproduces the three
//! runs, emits downsampled power/frequency traces, and summarizes p-state
//! residency and completion times.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run_spec;
use crate::table::{f3, pct, TextTable};

/// The two PM limits of the paper's figure.
pub const LIMITS_W: [f64; 2] = [14.5, 10.5];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig5",
        "PM on ammp: unconstrained vs 14.5 W and 10.5 W limits (paper Figure 5)",
    );
    let ammp = spec::by_name("ammp").expect("ammp is in the suite");

    let mut summary = TextTable::new(vec![
        "configuration",
        "time_s",
        "mean_w",
        "max_100ms_w",
        "violations",
        "pstates_used",
    ]);
    let mut trace = TextTable::new(vec!["configuration", "t_ms", "power_w", "freq_mhz"]);

    let mut configs: Vec<(String, GovernorSpec)> =
        vec![("unconstrained".to_owned(), GovernorSpec::Unconstrained)];
    for watts in LIMITS_W {
        configs.push((format!("pm-{watts}W"), GovernorSpec::Pm { limit_w: watts }));
    }

    let models = ctx.spec_models();
    let (ammp_ref, models_ref) = (&ammp, &models);
    let cells: Vec<_> = configs
        .iter()
        .map(|(_, governor)| {
            move || {
                median_run_spec(pool, governor, models_ref, ammp_ref.program(), ctx.table(), &[])
            }
        })
        .collect();
    let reports = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for ((label, _), report) in configs.iter().zip(reports) {
        let max_window = report
            .trace
            .moving_average_power(10)
            .into_iter()
            .fold(0.0f64, f64::max);
        let limit = label
            .strip_prefix("pm-")
            .and_then(|s| s.strip_suffix('W'))
            .and_then(|s| s.parse::<f64>().ok());
        let violations = limit.map_or(0.0, |l| {
            report.violation_fraction(aapm_platform::units::Watts::new(l), 10)
        });
        let residency = report
            .trace
            .pstate_residency()
            .into_iter()
            .map(|(id, frac)| {
                let mhz = ctx.table().get(id).map(|s| s.frequency().mhz()).unwrap_or(0);
                format!("{mhz}:{}", pct(frac))
            })
            .collect::<Vec<_>>()
            .join(" ");
        summary.row(vec![
            label.clone(),
            f3(report.execution_time.seconds()),
            f3(report.mean_power().map_or(0.0, |w| w.watts())),
            f3(max_window),
            pct(violations),
            residency,
        ]);
        for (i, record) in report.trace.records().iter().enumerate() {
            if i % 5 == 0 {
                let mhz = ctx
                    .table()
                    .get(record.pstate)
                    .map(|s| s.frequency().mhz())
                    .unwrap_or(0);
                trace.row(vec![
                    label.clone(),
                    format!("{:.0}", record.time.millis()),
                    f3(record.power.watts()),
                    mhz.to_string(),
                ]);
            }
        }
    }
    out.table("summary", summary);
    out.table("trace", trace);
    out.note(
        "PM modulates frequency with ammp's alternating memory/core phases; \
         tighter limits shift residency toward lower p-states and stretch \
         completion time (paper: ammp runs to completion in each case)",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn tighter_limits_run_longer_and_cooler() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 3);
        let time = |i: usize| rows[i][1].parse::<f64>().unwrap();
        let mean_w = |i: usize| rows[i][2].parse::<f64>().unwrap();
        // unconstrained < pm-14.5 < pm-10.5 in time; reverse in power.
        assert!(time(0) <= time(1) && time(1) < time(2));
        assert!(mean_w(0) >= mean_w(1) && mean_w(1) > mean_w(2));
        // Both PM runs meet their limits over 100 ms windows.
        let max_window = |i: usize| rows[i][3].parse::<f64>().unwrap();
        assert!(max_window(1) <= 14.5 + 0.2, "14.5 W run peaked at {}", max_window(1));
        assert!(max_window(2) <= 10.5 + 0.2, "10.5 W run peaked at {}", max_window(2));
    }
}
