//! Figure 11 — per-benchmark performance reduction at each PS floor.
//!
//! Nearly the mirror of Figure 10: memory-bound workloads lose the least
//! performance, core-bound the most. The paper's key finding reproduced
//! here: `art` and `mcf` — memory-bound to the DCU counter, but with
//! heavily-overlapped misses — *violate* their floors under the primary
//! 0.81 exponent, and the alternate 0.59 exponent repairs (or nearly
//! repairs) the violations.

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::ps_sweep::{self, Exponent, PsSweep};
use crate::table::{pct, TextTable};

/// Runs the experiment with a precomputed sweep.
pub fn run_with(sweep: &PsSweep) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig11",
        "Performance reduction per workload and PS floor, exponents 0.81 and 0.59 (paper Figure 11)",
    );
    let mut rows: Vec<&crate::ps_sweep::BenchmarkSweep> = sweep.benchmarks.iter().collect();
    rows.sort_by(|a, b| b.max_reduction().total_cmp(&a.max_reduction()));

    for exponent in Exponent::BOTH {
        let mut table = TextTable::new(vec![
            "benchmark",
            "floor80",
            "floor60",
            "floor40",
            "floor20",
            "max_600mhz",
        ]);
        for b in &rows {
            table.row(vec![
                b.benchmark.clone(),
                pct(b.reduction(exponent, 0.8)),
                pct(b.reduction(exponent, 0.6)),
                pct(b.reduction(exponent, 0.4)),
                pct(b.reduction(exponent, 0.2)),
                pct(b.max_reduction()),
            ]);
        }
        let name = match exponent {
            Exponent::Primary => "reduction_exponent_081",
            Exponent::Alternate => "reduction_exponent_059",
        };
        out.table(name, table);
    }

    for name in ["art", "mcf"] {
        let b = sweep.benchmark(name).expect("violation cases in suite");
        out.note(format!(
            "{name} at the 80% floor: {} reduction with exponent 0.81 \
             (allowed 20% — violated), {} with 0.59 \
             (paper: art 42.2%→26.3%, mcf 27.7%→17.9%)",
            pct(b.reduction(Exponent::Primary, 0.8)),
            pct(b.reduction(Exponent::Alternate, 0.8)),
        ));
    }
    out
}

/// Runs the experiment end to end.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &crate::pool::Pool) -> Result<ExperimentOutput> {
    Ok(run_with(&ps_sweep::compute(ctx, pool)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_sweep;

    #[test]
    fn art_and_mcf_violate_with_081_and_improve_with_059() {
        let sweep = test_sweep();
        let art = sweep.benchmark("art").unwrap();
        let mcf = sweep.benchmark("mcf").unwrap();
        // Violations with the primary exponent (allowance is 20%).
        let art_081 = art.reduction(Exponent::Primary, 0.8);
        let mcf_081 = mcf.reduction(Exponent::Primary, 0.8);
        assert!(art_081 > 0.30, "art should violate hard: {art_081}");
        assert!(mcf_081 > 0.22, "mcf should violate: {mcf_081}");
        // The alternate exponent repairs mcf and pulls art close.
        let art_059 = art.reduction(Exponent::Alternate, 0.8);
        let mcf_059 = mcf.reduction(Exponent::Alternate, 0.8);
        assert!(mcf_059 <= 0.20 + 0.01, "mcf repaired: {mcf_059}");
        assert!(art_059 < art_081 - 0.08, "art improved: {art_059} vs {art_081}");
    }

    #[test]
    fn well_modelled_benchmarks_meet_their_floors() {
        let sweep = test_sweep();
        for name in ["swim", "sixtrack", "mesa", "gzip", "ammp"] {
            let b = sweep.benchmark(name).unwrap();
            let r = b.reduction(Exponent::Primary, 0.8);
            assert!(r <= 0.21, "{name} at 80% floor: reduction {r} exceeds allowance");
        }
    }

    #[test]
    fn memory_bound_lose_least_core_bound_most() {
        let sweep = test_sweep();
        let swim = sweep.benchmark("swim").unwrap().reduction(Exponent::Primary, 0.8);
        let sixtrack = sweep.benchmark("sixtrack").unwrap().reduction(Exponent::Primary, 0.8);
        assert!(swim < sixtrack, "swim {swim} vs sixtrack {sixtrack}");
    }
}
