//! Actuator ablations: clock throttling vs DVFS, and the thermal envelope.
//!
//! * `ablation-throttle` — why the paper builds on DVFS: at matched
//!   performance floors, PowerSave (voltage + frequency) saves real energy
//!   while ThrottleSave (duty-cycle gating at full voltage) saves almost
//!   none — it only reshapes *when* the same joules are spent, and leaks
//!   longer.
//! * `ablation-thermal` — a die-temperature envelope layered over the
//!   unconstrained governor: the guard holds the cap that free-running
//!   execution of a hot workload would exceed.

use aapm::baselines::Unconstrained;
use aapm::governor::Governor;
use aapm::spec::GovernorSpec;
use aapm::thermal_guard::{ThermalGuard, ThermalGuardConfig};
use aapm_platform::error::Result;
use aapm_platform::thermal::Celsius;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
// The thermal-envelope cell tunes `ThermalGuardConfig::cap`, which the spec
// grammar does not expose, so it keeps the closure-based `median_run`.
use crate::runner::{median_run, median_run_spec};
use crate::table::{f3, pct, TextTable};

/// DVFS vs clock throttling at matched performance floors.
///
/// # Errors
///
/// Propagates platform errors.
pub fn throttle_vs_dvfs(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-throttle",
        "Energy at matched floors: DVFS PowerSave vs clock-throttling ThrottleSave",
    );
    let mut table = TextTable::new(vec![
        "benchmark",
        "floor",
        "dvfs_savings",
        "throttle_savings",
        "dvfs_realized",
        "throttle_realized",
    ]);
    let mut dvfs_always_wins = true;
    // One cell per benchmark; each covers its two floors against a shared
    // unconstrained reference.
    type FloorRow = (f64, f64, f64, f64, f64);
    let names = ["sixtrack", "gzip", "swim"];
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = names
        .into_iter()
        .map(|name| {
            move || -> Result<Vec<FloorRow>> {
                let bench = spec::by_name(name).expect("known benchmark");
                let reference = median_run_spec(
                    pool,
                    &GovernorSpec::Unconstrained,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                let mut rows = Vec::new();
                for floor in [0.75, 0.5] {
                    let ps = median_run_spec(
                        pool,
                        &GovernorSpec::Ps { floor },
                        models_ref,
                        bench.program(),
                        ctx.table(),
                        &[],
                    )?;
                    let throttled = median_run_spec(
                        pool,
                        &GovernorSpec::ThrottleSave { floor },
                        models_ref,
                        bench.program(),
                        ctx.table(),
                        &[],
                    )?;
                    rows.push((
                        floor,
                        ps.energy_savings_vs(&reference),
                        throttled.energy_savings_vs(&reference),
                        reference.execution_time / ps.execution_time,
                        reference.execution_time / throttled.execution_time,
                    ));
                }
                Ok(rows)
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (name, rows) in names.into_iter().zip(results) {
        for (floor, dvfs_savings, throttle_savings, dvfs_realized, throttle_realized) in rows {
            dvfs_always_wins &= dvfs_savings >= throttle_savings - 1e-6;
            table.row(vec![
                name.into(),
                pct(floor),
                pct(dvfs_savings),
                pct(throttle_savings),
                pct(dvfs_realized),
                pct(throttle_realized),
            ]);
        }
    }
    out.table("comparison", table);
    out.note(format!(
        "DVFS saves at least as much energy as throttling at every matched \
         floor: {dvfs_always_wins}. Gating the clock keeps V²f constant for \
         the active cycles and leaks over the stretched run — throttling \
         manages *power*, DVFS manages *energy*"
    ));
    Ok(out)
}

/// Thermal envelope over a hot workload.
///
/// # Errors
///
/// Propagates platform errors.
pub fn thermal_envelope(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-thermal",
        "Die-temperature envelope (ThermalGuard) on the hottest workload",
    );
    // Stretch crafty so the package (τ ≈ 4 s) fully heats.
    let crafty = spec::by_name("crafty").expect("crafty exists");
    let program = crafty.program().scaled(4.0);
    let cap = Celsius::new(72.0);

    let program_ref = &program;
    let models = ctx.spec_models();
    let models_ref = &models;
    let free_cell = move || {
        median_run_spec(
            pool,
            &GovernorSpec::Unconstrained,
            models_ref,
            program_ref,
            ctx.table(),
            &[],
        )
    };
    let guarded_cell = move || {
        let config = ThermalGuardConfig { cap, ..ThermalGuardConfig::default() };
        let guard_factory = || {
            Box::new(ThermalGuard::with_config(Unconstrained::new(), config))
                as Box<dyn Governor>
        };
        median_run(pool, &guard_factory, program_ref, ctx.table(), &[])
    };
    let cells: Vec<Box<dyn FnOnce() -> Result<_> + Send>> =
        vec![Box::new(free_cell), Box::new(guarded_cell)];
    let mut reports = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    let guarded = reports.pop().expect("two cells were submitted");
    let free = reports.pop().expect("two cells were submitted");

    // Reconstruct the temperature trajectories from the power traces using
    // the platform's RC model (the runtime reports power, not temperature,
    // in its trace).
    let trajectory = |report: &aapm::report::RunReport| {
        let mut model =
            aapm_platform::thermal::ThermalModel::new(*aapm_platform::MachineConfig::default().thermal());
        let mut peak = model.temperature().degrees();
        for record in report.trace.records() {
            model.advance(record.true_power, report.trace.interval());
            peak = peak.max(model.temperature().degrees());
        }
        peak
    };
    let free_peak = trajectory(&free);
    let guarded_peak = trajectory(&guarded);

    let mut table = TextTable::new(vec!["configuration", "time_s", "peak_die_c", "mean_w"]);
    table.row(vec![
        "unconstrained".into(),
        f3(free.execution_time.seconds()),
        f3(free_peak),
        f3(free.mean_power().map_or(0.0, |w| w.watts())),
    ]);
    table.row(vec![
        format!("thermal-guard@{:.0}C", cap.degrees()),
        f3(guarded.execution_time.seconds()),
        f3(guarded_peak),
        f3(guarded.mean_power().map_or(0.0, |w| w.watts())),
    ]);
    out.table("comparison", table);
    out.note(format!(
        "free-running crafty peaks at {free_peak:.1} °C (over the \
         {:.0} °C cap); the guard holds {guarded_peak:.1} °C at a \
         {:.1}% time cost",
        cap.degrees(),
        (guarded.execution_time / free.execution_time - 1.0) * 100.0
    ));
    Ok(out)
}

/// Deep power caps below the lowest p-state's power: plain PM vs the
/// combined DVFS + clock-modulation governor.
///
/// # Errors
///
/// Propagates platform errors.
pub fn deep_caps(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    use aapm::limits::PowerLimit;

    let mut out = ExperimentOutput::new(
        "ablation-deepcap",
        "Power caps below the lowest p-state: plain PM vs combined DVFS+modulation",
    );
    let gzip = spec::by_name("gzip").expect("gzip exists");
    let mut table = TextTable::new(vec![
        "limit_w",
        "pm_violations",
        "combined_violations",
        "pm_mean_w",
        "combined_mean_w",
        "combined_slowdown",
    ]);
    let gzip_ref = &gzip;
    let models = ctx.spec_models();
    let models_ref = &models;
    let reference = median_run_spec(
        pool,
        &GovernorSpec::Unconstrained,
        models_ref,
        gzip.program(),
        ctx.table(),
        &[],
    )?;
    let limits_w = [5.5, 4.5, 3.5, 2.5];
    let cells: Vec<_> = limits_w
        .into_iter()
        .map(|watts| {
            move || -> Result<(aapm::report::RunReport, aapm::report::RunReport)> {
                let pm = median_run_spec(
                    pool,
                    &GovernorSpec::Pm { limit_w: watts },
                    models_ref,
                    gzip_ref.program(),
                    ctx.table(),
                    &[],
                )?;
                let combined = median_run_spec(
                    pool,
                    &GovernorSpec::CombinedPm { limit_w: watts },
                    models_ref,
                    gzip_ref.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok((pm, combined))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (watts, (pm, combined)) in limits_w.into_iter().zip(results) {
        let limit = PowerLimit::new(watts).expect("valid limit");
        table.row(vec![
            format!("{watts:.1}"),
            pct(pm.violation_fraction(limit.watts(), 10)),
            pct(combined.violation_fraction(limit.watts(), 10)),
            f3(pm.mean_power().map_or(0.0, |w| w.watts())),
            f3(combined.mean_power().map_or(0.0, |w| w.watts())),
            f3(combined.execution_time / reference.execution_time),
        ]);
    }
    out.table("comparison", table);
    out.note(
        "plain PM bottoms out at 600 MHz and violates caps below P0's \
         power; layering ACPI T-state modulation under the p-states holds \
         them at a proportional performance cost",
    );
    Ok(out)
}

/// Phase-aware raising vs PM's fixed 100 ms window.
///
/// # Errors
///
/// Propagates platform errors.
pub fn phase_pm(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    use aapm::limits::PowerLimit;

    let mut out = ExperimentOutput::new(
        "ablation-phase",
        "PM's fixed raise window vs phase-detector-triggered raises",
    );
    let mut table = TextTable::new(vec![
        "benchmark",
        "limit_w",
        "pm_time_s",
        "phase_time_s",
        "pm_violations",
        "phase_violations",
    ]);
    // ammp's phase alternation is where the detector helps; galgel's bursts
    // are where eager raising risks violations.
    let cases = [("ammp", 10.5), ("ammp", 12.5), ("galgel", 13.5), ("galgel", 15.5)];
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = cases
        .into_iter()
        .map(|(name, watts)| {
            move || -> Result<(aapm::report::RunReport, aapm::report::RunReport)> {
                let bench = spec::by_name(name).expect("known benchmark");
                let pm = median_run_spec(
                    pool,
                    &GovernorSpec::Pm { limit_w: watts },
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                let phased = median_run_spec(
                    pool,
                    &GovernorSpec::PhasePm { limit_w: watts },
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok((pm, phased))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for ((name, watts), (pm, phased)) in cases.into_iter().zip(results) {
        let limit = PowerLimit::new(watts).expect("valid limit");
        table.row(vec![
            name.into(),
            format!("{watts:.1}"),
            f3(pm.execution_time.seconds()),
            f3(phased.execution_time.seconds()),
            pct(pm.violation_fraction(limit.watts(), 10)),
            pct(phased.violation_fraction(limit.watts(), 10)),
        ]);
    }
    out.table("comparison", table);
    out.note(
        "the detector recovers the raise-window latency on ammp's genuine \
         phase boundaries; on galgel it re-raises into bursts sooner, \
         making explicit the safety/performance trade the paper's fixed \
         window resolves conservatively",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn phase_pm_is_no_slower_on_ammp() {
        let out = phase_pm(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        for row in rows.iter().filter(|r| r[0] == "ammp") {
            let pm_time: f64 = row[2].parse().unwrap();
            let phase_time: f64 = row[3].parse().unwrap();
            assert!(
                phase_time <= pm_time * 1.01,
                "phase-aware PM should not lose on ammp at {} W: {phase_time} vs {pm_time}",
                row[1]
            );
        }
    }

    #[test]
    fn combined_pm_holds_caps_plain_pm_cannot() {
        let out = deep_caps(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let parse_pct =
            |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        let mut pm_violated_somewhere = false;
        for row in &rows {
            let pm_violations = parse_pct(&row[1]);
            let combined_violations = parse_pct(&row[2]);
            pm_violated_somewhere |= pm_violations > 0.5;
            assert!(
                combined_violations < 0.02,
                "combined PM must hold the {} W cap, violated {combined_violations}",
                row[0]
            );
        }
        assert!(pm_violated_somewhere, "some cap must be unreachable for plain PM");
    }

    #[test]
    fn dvfs_beats_throttling_on_energy_everywhere() {
        let out = throttle_vs_dvfs(test_ctx(), test_pool()).unwrap();
        for line in out.tables[0].1.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let dvfs: f64 = cells[2].trim_end_matches('%').parse().unwrap();
            let throttle: f64 = cells[3].trim_end_matches('%').parse().unwrap();
            assert!(
                dvfs >= throttle - 0.1,
                "{}: DVFS {dvfs}% must beat throttling {throttle}%",
                cells[0]
            );
            // Throttling saves (almost) nothing.
            assert!(throttle < 8.0, "{}: throttling saved {throttle}%", cells[0]);
            // Both respect the floor.
            for col in [4usize, 5] {
                let realized: f64 = cells[col].trim_end_matches('%').parse().unwrap();
                let floor: f64 = cells[1].trim_end_matches('%').parse().unwrap();
                assert!(realized >= floor - 2.0, "{}: realized {realized} < floor", cells[0]);
            }
        }
    }

    #[test]
    fn thermal_guard_holds_the_cap() {
        let out = thermal_envelope(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let free_peak: f64 = rows[0][2].parse().unwrap();
        let guarded_peak: f64 = rows[1][2].parse().unwrap();
        assert!(free_peak > 72.0, "free run must exceed the cap, peaked {free_peak}");
        assert!(guarded_peak <= 73.5, "guard must hold ≈72 °C, peaked {guarded_peak}");
        let free_time: f64 = rows[0][1].parse().unwrap();
        let guarded_time: f64 = rows[1][1].parse().unwrap();
        assert!(guarded_time > free_time, "capping costs time");
    }
}
