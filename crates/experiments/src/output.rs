//! Common output container for experiments.

use std::fmt;
use std::io;
use std::path::Path;

use crate::table::TextTable;

/// The rendered result of one experiment (one table/figure of the paper).
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Short id (`"fig7"`, `"tab2"`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Named tables (name is used as the CSV filename stem).
    pub tables: Vec<(String, TextTable)>,
    /// Free-form observations (headline numbers, paper comparisons).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an output with no tables or notes yet.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentOutput { id, title: title.into(), tables: Vec::new(), notes: Vec::new() }
    }

    /// Adds a table.
    pub fn table(&mut self, name: impl Into<String>, table: TextTable) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Writes every table as `<dir>/<id>_<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<()> {
        for (name, table) in &self.tables {
            table.write_csv(&dir.join(format!("{}_{}.csv", self.id, name)))?;
        }
        Ok(())
    }
}

impl fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        for (name, table) in &self.tables {
            writeln!(f, "\n[{name}]")?;
            write!(f, "{}", table.render())?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for note in &self.notes {
                writeln!(f, "note: {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_tables_and_notes() {
        let mut out = ExperimentOutput::new("figX", "Demo");
        let mut t = TextTable::new(vec!["col"]);
        t.row(vec!["val".into()]);
        out.table("main", t).note("shape holds");
        let text = out.to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("[main]"));
        assert!(text.contains("val"));
        assert!(text.contains("note: shape holds"));
    }

    #[test]
    fn csvs_written_per_table() {
        let mut out = ExperimentOutput::new("figY", "Demo");
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into()]);
        out.table("one", t.clone()).table("two", t);
        let dir = std::env::temp_dir().join("aapm-output-test");
        out.write_csvs(&dir).unwrap();
        assert!(dir.join("figY_one.csv").exists());
        assert!(dir.join("figY_two.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
