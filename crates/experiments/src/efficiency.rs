//! Governor efficiency comparison: energy, EDP, ED²P.
//!
//! Beyond the paper's own metrics, this tabulates the classic efficiency
//! products for every governor on a representative workload mix. The
//! expected shape: PS wins on raw energy (it was designed to), the
//! unconstrained run wins on ED²P for core-bound work (performance
//! dominates), and PM sits between — it spends energy only where the limit
//! allows performance to buy something.

use aapm::baselines::{StaticClock, Unconstrained};
use aapm::governor::Governor;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm_platform::error::Result;
use aapm_platform::pstate::PStateId;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run;
use crate::table::{f3, TextTable};

/// The representative mix: one memory-bound, one phased, one hot.
pub const MIX: [&str; 3] = ["swim", "ammp", "crafty"];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "efficiency",
        "Energy / EDP / ED²P per governor on a representative mix",
    );
    let mut table = TextTable::new(vec![
        "governor",
        "time_s",
        "energy_j",
        "edp_js",
        "ed2p_js2",
    ]);

    type Factory<'a> = Box<dyn Fn() -> Box<dyn Governor> + Send + Sync + 'a>;
    let power_model = ctx.power_model().clone();
    let perf_model = ctx.perf_model_paper();
    let governors: Vec<(&str, Factory<'_>)> = vec![
        ("unconstrained", Box::new(|| Box::new(Unconstrained::new()) as Box<dyn Governor>)),
        (
            "static-1400",
            Box::new(|| Box::new(StaticClock::new(PStateId::new(4))) as Box<dyn Governor>),
        ),
        (
            "pm-13.5W",
            Box::new(move || {
                Box::new(PerformanceMaximizer::new(
                    power_model.clone(),
                    PowerLimit::new(13.5).expect("valid limit"),
                )) as Box<dyn Governor>
            }),
        ),
        (
            "ps-80%",
            Box::new(move || {
                Box::new(PowerSave::new(
                    perf_model,
                    PerformanceFloor::new(0.8).expect("valid floor"),
                )) as Box<dyn Governor>
            }),
        ),
        (
            "ps-60%",
            Box::new(move || {
                Box::new(PowerSave::new(
                    perf_model,
                    PerformanceFloor::new(0.6).expect("valid floor"),
                )) as Box<dyn Governor>
            }),
        ),
    ];

    // One cell per governor, covering its three-benchmark mix.
    let cells: Vec<_> = governors
        .iter()
        .map(|(_, factory)| {
            move || -> Result<(f64, f64)> {
                let mut time = 0.0;
                let mut energy = 0.0;
                for name in MIX {
                    let bench = spec::by_name(name).expect("mix is in the suite");
                    let report =
                        median_run(pool, factory.as_ref(), bench.program(), ctx.table(), &[])?;
                    time += report.execution_time.seconds();
                    energy += report.measured_energy.joules();
                }
                Ok((time, energy))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;

    let mut rows = Vec::new();
    for (&(label, _), (time, energy)) in governors.iter().zip(results) {
        rows.push((label, time, energy));
        table.row(vec![
            label.into(),
            f3(time),
            f3(energy),
            f3(energy * time),
            f3(energy * time * time),
        ]);
    }
    out.table("efficiency", table);

    // Sanity highlights for the note.
    let by = |name: &str| rows.iter().find(|(l, _, _)| *l == name).expect("row exists");
    let (_, t_un, e_un) = by("unconstrained");
    let (_, t_ps, e_ps) = by("ps-80%");
    out.note(format!(
        "ps-80% trades {:.0}% more time for {:.0}% less energy than \
         unconstrained; EDP ranks the middle ground, ED²P leans back toward \
         performance",
        (t_ps / t_un - 1.0) * 100.0,
        (1.0 - e_ps / e_un) * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn efficiency_orderings_hold() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let get = |name: &str, col: usize| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[col].parse().unwrap()
        };
        // Unconstrained is fastest; PS-60% uses the least energy of the
        // DVFS governors.
        for other in ["static-1400", "pm-13.5W", "ps-80%", "ps-60%"] {
            assert!(get("unconstrained", 1) <= get(other, 1) + 1e-9, "{other} time");
        }
        assert!(get("ps-60%", 2) < get("unconstrained", 2));
        assert!(get("ps-60%", 2) <= get("ps-80%", 2) + 1e-9);
        // PM under a 13.5 W limit still beats static-1400 on time.
        assert!(get("pm-13.5W", 1) < get("static-1400", 1));
    }
}
