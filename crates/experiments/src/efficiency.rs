//! Governor efficiency comparison: energy, EDP, ED²P.
//!
//! Beyond the paper's own metrics, this tabulates the classic efficiency
//! products for every governor on a representative workload mix. The
//! expected shape: PS wins on raw energy (it was designed to), the
//! unconstrained run wins on ED²P for core-bound work (performance
//! dominates), and PM sits between — it spends energy only where the limit
//! allows performance to buy something.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run_spec;
use crate::table::{f3, TextTable};

/// The representative mix: one memory-bound, one phased, one hot.
pub const MIX: [&str; 3] = ["swim", "ammp", "crafty"];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "efficiency",
        "Energy / EDP / ED²P per governor on a representative mix",
    );
    let mut table = TextTable::new(vec![
        "governor",
        "time_s",
        "energy_j",
        "edp_js",
        "ed2p_js2",
    ]);

    let governors: Vec<(&str, GovernorSpec)> = vec![
        ("unconstrained", GovernorSpec::Unconstrained),
        ("static-1400", GovernorSpec::StaticClock { pstate: 4 }),
        ("pm-13.5W", GovernorSpec::Pm { limit_w: 13.5 }),
        ("ps-80%", GovernorSpec::Ps { floor: 0.8 }),
        ("ps-60%", GovernorSpec::Ps { floor: 0.6 }),
    ];

    let models = ctx.spec_models();
    let models_ref = &models;
    // One cell per governor, covering its three-benchmark mix.
    let cells: Vec<_> = governors
        .iter()
        .map(|(_, governor)| {
            move || -> Result<(f64, f64)> {
                let mut time = 0.0;
                let mut energy = 0.0;
                for name in MIX {
                    let bench = spec::by_name(name).expect("mix is in the suite");
                    let report = median_run_spec(
                        pool,
                        governor,
                        models_ref,
                        bench.program(),
                        ctx.table(),
                        &[],
                    )?;
                    time += report.execution_time.seconds();
                    energy += report.measured_energy.joules();
                }
                Ok((time, energy))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;

    let mut rows = Vec::new();
    for (&(label, _), (time, energy)) in governors.iter().zip(results) {
        rows.push((label, time, energy));
        table.row(vec![
            label.into(),
            f3(time),
            f3(energy),
            f3(energy * time),
            f3(energy * time * time),
        ]);
    }
    out.table("efficiency", table);

    // Sanity highlights for the note.
    let by = |name: &str| rows.iter().find(|(l, _, _)| *l == name).expect("row exists");
    let (_, t_un, e_un) = by("unconstrained");
    let (_, t_ps, e_ps) = by("ps-80%");
    out.note(format!(
        "ps-80% trades {:.0}% more time for {:.0}% less energy than \
         unconstrained; EDP ranks the middle ground, ED²P leans back toward \
         performance",
        (t_ps / t_un - 1.0) * 100.0,
        (1.0 - e_ps / e_un) * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn efficiency_orderings_hold() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let get = |name: &str, col: usize| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[col].parse().unwrap()
        };
        // Unconstrained is fastest; PS-60% uses the least energy of the
        // DVFS governors.
        for other in ["static-1400", "pm-13.5W", "ps-80%", "ps-60%"] {
            assert!(get("unconstrained", 1) <= get(other, 1) + 1e-9, "{other} time");
        }
        assert!(get("ps-60%", 2) < get("unconstrained", 2));
        assert!(get("ps-60%", 2) <= get("ps-80%", 2) + 1e-9);
        // PM under a 13.5 W limit still beats static-1400 on time.
        assert!(get("pm-13.5W", 1) < get("static-1400", 1));
    }
}
