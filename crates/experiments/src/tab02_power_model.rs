//! Table II — the per-p-state DPC power model.
//!
//! The paper's Table II lists, per p-state, the supply voltage and the
//! fitted (α, β) of `Power = α·DPC + β`. This experiment reports the model
//! *trained on the simulated platform* side-by-side with the paper's
//! published coefficients, plus the training-set mean absolute error per
//! p-state (the paper's per-sample-accuracy concern), and the trained eq.-3
//! performance-model parameters.

use aapm_models::power_model::PowerModel;
use aapm_models::training::power_model_training_error;
use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::table::{f3, TextTable};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, _pool: &Pool) -> Result<ExperimentOutput> {
    let mut out =
        ExperimentOutput::new("tab2", "DPC power model per p-state (paper Table II)");
    let paper = PowerModel::paper_table_ii();
    let trained = ctx.power_model();
    let errors = power_model_training_error(ctx.training(), trained);

    let mut table = TextTable::new(vec![
        "freq_mhz",
        "voltage_v",
        "alpha_trained",
        "beta_trained",
        "alpha_paper",
        "beta_paper",
        "train_mae_w",
    ]);
    for (id, state) in ctx.table().iter() {
        let t = trained.coefficients(id)?;
        let p = paper.coefficients(id)?;
        let mae = errors.iter().find(|(e_id, _)| *e_id == id).map_or(0.0, |(_, mae)| *mae);
        table.row(vec![
            state.frequency().mhz().to_string(),
            f3(state.voltage().volts()),
            f3(t.alpha),
            f3(t.beta),
            f3(p.alpha),
            f3(p.beta),
            f3(mae),
        ]);
    }
    out.table("coefficients", table);

    let fit = ctx.perf_fit();
    out.note(format!(
        "trained eq.-3 parameters: DCU/IPC threshold {:.2}, exponent {:.2} \
         (mean relative IPC-projection error {:.3}); paper: threshold 1.21, \
         exponent 0.81 with alternate local minimum 0.59",
        fit.params.dcu_threshold, fit.params.exponent, fit.mean_relative_error
    ));
    out.note(
        "trained α/β reproduce the paper's *shape* (both grow monotonically \
         with the p-state); absolute values differ because the simulated \
         platform's leakage/dynamic split is not the physical part's",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn coefficients_cover_all_states_and_grow() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let table = &out.tables[0].1;
        assert_eq!(table.len(), 8);
        let rows: Vec<Vec<f64>> = table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse::<f64>().unwrap()).collect())
            .collect();
        for pair in rows.windows(2) {
            assert!(pair[1][2] > pair[0][2], "trained alpha grows");
            assert!(pair[1][3] > pair[0][3], "trained beta grows");
        }
        // Training MAE stays below the 0.5 W guardband at every p-state
        // except possibly the hottest, where 1 W is still acceptable.
        for row in &rows {
            assert!(row[6] < 1.0, "MAE {} too high at {} MHz", row[6], row[0]);
        }
    }
}
