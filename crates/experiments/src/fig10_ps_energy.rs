//! Figure 10 — per-benchmark energy savings at each PS floor.
//!
//! The paper sorts workloads by the maximum benefit available with DVFS
//! (the 600 MHz run) and plots savings at each floor, with an ALLBENCH
//! aggregate separating above- from below-average savers. Memory-bound
//! workloads (swim, equake, mcf, lucas, applu) save the most; core-bound
//! ones (eon, sixtrack, crafty, twolf, mesa) the least.

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::ps_sweep::{self, Exponent, PsSweep};
use crate::runner::ps_floors;
use crate::table::{pct, TextTable};

/// Runs the experiment with a precomputed sweep.
pub fn run_with(sweep: &PsSweep) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig10",
        "Energy savings per workload and PS floor (paper Figure 10)",
    );
    let mut rows: Vec<&crate::ps_sweep::BenchmarkSweep> = sweep.benchmarks.iter().collect();
    rows.sort_by(|a, b| b.max_savings().total_cmp(&a.max_savings()));

    let mut table = TextTable::new(vec![
        "benchmark",
        "floor80",
        "floor60",
        "floor40",
        "floor20",
        "max_600mhz",
    ]);
    for b in &rows {
        table.row(vec![
            b.benchmark.clone(),
            pct(b.savings(Exponent::Primary, 0.8)),
            pct(b.savings(Exponent::Primary, 0.6)),
            pct(b.savings(Exponent::Primary, 0.4)),
            pct(b.savings(Exponent::Primary, 0.2)),
            pct(b.max_savings()),
        ]);
    }
    // ALLBENCH aggregate.
    let e_ref: f64 = sweep.benchmarks.iter().map(|b| b.unconstrained.energy_j).sum();
    let e_600: f64 = sweep.benchmarks.iter().map(|b| b.at_600mhz.energy_j).sum();
    let mut allbench = vec!["ALLBENCH".to_owned()];
    for floor in ps_floors() {
        allbench.push(pct(sweep.suite_savings(Exponent::Primary, floor)));
    }
    allbench.push(pct(1.0 - e_600 / e_ref));
    table.row(allbench);
    out.table("savings", table);
    out.note(
        "sorted by the 600 MHz bound: memory-bound workloads head the list \
         (PS can slow them cheaply), core-bound workloads trail it — the \
         paper's Figure 10 ordering",
    );
    out
}

/// Runs the experiment end to end.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &crate::pool::Pool) -> Result<ExperimentOutput> {
    Ok(run_with(&ps_sweep::compute(ctx, pool)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_sweep;

    #[test]
    fn memory_bound_save_more_than_core_bound() {
        let sweep = test_sweep();
        for saver in ["swim", "equake", "lucas"] {
            for miser in ["eon", "sixtrack", "crafty", "mesa"] {
                let s = sweep.benchmark(saver).unwrap().savings(Exponent::Primary, 0.8);
                let m = sweep.benchmark(miser).unwrap().savings(Exponent::Primary, 0.8);
                assert!(
                    s > m,
                    "{saver} ({s:.3}) should out-save {miser} ({m:.3}) at the 80% floor"
                );
            }
        }
    }

    #[test]
    fn max_savings_ordering_puts_memory_bound_first() {
        let sweep = test_sweep();
        let mut ordered: Vec<(&str, f64)> = sweep
            .benchmarks
            .iter()
            .map(|b| (b.benchmark.as_str(), b.max_savings()))
            .collect();
        ordered.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<&str> = ordered.iter().take(8).map(|(n, _)| *n).collect();
        for name in ["swim", "equake", "lucas", "mcf"] {
            assert!(top.contains(&name), "{name} should be in the top savers: {top:?}");
        }
    }
}
