//! The paper's headline claims, recomputed in one place.
//!
//! * PM at a 17.5 W budget obtains ≈86 % of the possible suite speedup.
//! * PS at the 80 % floor saves ≈19.2 % energy for ≈10 % performance loss.
//! * PM enforces every limit except on galgel.
//! * art/mcf violate PS floors under exponent 0.81; 0.59 repairs them.

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::fig07_pm_speedup;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::ps_sweep::{self, Exponent, PsSweep};
use crate::table::{pct, TextTable};

/// Runs the headline summary with a precomputed PS sweep.
///
/// # Errors
///
/// Propagates platform errors from the PM runs.
pub fn run_with(ctx: &ExperimentContext, pool: &Pool, sweep: &PsSweep) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new("headline", "Headline claims: paper vs reproduction");
    let (_, capture) = fig07_pm_speedup::compute(ctx, pool)?;

    let mut table = TextTable::new(vec!["claim", "paper", "reproduction"]);
    table.row(vec![
        "PM fraction of possible suite speedup at 17.5 W".into(),
        "86%".into(),
        pct(capture),
    ]);
    table.row(vec![
        "PS suite energy savings at 80% floor".into(),
        "19.2%".into(),
        pct(sweep.suite_savings(Exponent::Primary, 0.8)),
    ]);
    table.row(vec![
        "PS suite performance reduction at 80% floor".into(),
        "10%".into(),
        pct(sweep.suite_reduction(Exponent::Primary, 0.8)),
    ]);
    table.row(vec![
        "PS suite reduction at 60% floor (allowed 40%)".into(),
        "30.8%".into(),
        pct(sweep.suite_reduction(Exponent::Primary, 0.6)),
    ]);
    let art = sweep.benchmark("art").expect("art in suite");
    let mcf = sweep.benchmark("mcf").expect("mcf in suite");
    table.row(vec![
        "art reduction at 80% floor, exponent 0.81".into(),
        "42.2%".into(),
        pct(art.reduction(Exponent::Primary, 0.8)),
    ]);
    table.row(vec![
        "art reduction at 80% floor, exponent 0.59".into(),
        "26.3%".into(),
        pct(art.reduction(Exponent::Alternate, 0.8)),
    ]);
    table.row(vec![
        "mcf reduction at 80% floor, exponent 0.81".into(),
        "27.7%".into(),
        pct(mcf.reduction(Exponent::Primary, 0.8)),
    ]);
    table.row(vec![
        "mcf reduction at 80% floor, exponent 0.59".into(),
        "17.9%".into(),
        pct(mcf.reduction(Exponent::Alternate, 0.8)),
    ]);
    out.table("claims", table);
    Ok(out)
}

/// Runs the headline summary end to end.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let sweep = ps_sweep::compute(ctx, pool)?;
    run_with(ctx, pool, &sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_sweep};

    #[test]
    fn headline_numbers_land_in_paper_corridors() {
        let ctx = test_ctx();
        let sweep = test_sweep();
        let out = run_with(ctx, crate::test_support::test_pool(), sweep).unwrap();
        assert_eq!(out.tables[0].1.len(), 8);
        // The corridor checks live in the fig7/fig9/fig11 tests; here just
        // confirm the table renders every claim with a percentage.
        let csv = out.tables[0].1.to_csv();
        for line in csv.lines().skip(1) {
            assert!(line.contains('%'), "row missing percentage: {line}");
        }
    }
}
