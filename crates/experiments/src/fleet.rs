//! Fleet-scale power budgeting: hierarchical reallocation vs uniform caps.
//!
//! Scales the paper's single-node PM governor to a 24-node fleet under a
//! datacenter → rack → node budget tree and asks the question the
//! hierarchy exists to answer: does reclaiming slack from memory-bound
//! and finished nodes buy real throughput for the compute-bound ones, at
//! the same total power budget? Three arms share one fleet shape:
//!
//! * **hierarchical** — [`FleetPmController::hierarchical`]: every rack
//!   cadence the [`ClusterGovernor`] folds per-node guardband headroom
//!   bottom-up and water-fills caps top-down.
//! * **uniform** — the same per-node PM governors under static caps of
//!   `datacenter / n` watts each; no slack ever moves.
//! * **uncapped** — PM with an unreachable limit; the throughput ceiling
//!   the budget arms are measured against.

use aapm::cluster::{BudgetTree, ClusterGovernor, FleetPmController, NodeSpec, RackSpec};
use aapm_platform::config::MachineConfig;
use aapm_platform::error::Result;
use aapm_platform::events::HardwareEvent;
use aapm_platform::fleet::{CohortMode, Fleet};
use aapm_platform::machine::Machine;
use aapm_platform::phase::PhaseDescriptor;
use aapm_platform::program::PhaseProgram;
use aapm_platform::units::Seconds;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::table::{f3, pct, TextTable};

/// Nodes per workload class (one rack each).
pub const NODES_PER_CLASS: usize = 8;
/// Total fleet size.
pub const NODES: usize = 3 * NODES_PER_CLASS;
/// Total datacenter budget: 10 W per node, well below the worst-case draw.
pub const DATACENTER_W: f64 = 240.0;
/// Simulation horizon in base ticks (10 ms each): 20 simulated seconds.
pub const HORIZON_TICKS: u64 = 2_000;
/// Node PM decision cadence in base ticks (100 ms windows).
pub const NODE_CADENCE_TICKS: u64 = 10;
/// Cluster reallocation cadence in base ticks (once per second).
pub const GOVERNOR_EVERY_TICKS: u64 = 100;

fn cpu_machine(seed: u64) -> Machine {
    // ~40 s of work at the top p-state: never finishes inside the horizon,
    // so every extra watt the hierarchy grants is spent on instructions.
    let phase = PhaseDescriptor::builder("fleet-cpu")
        .instructions(80_000_000_000)
        .core_cpi(0.7)
        .build()
        .expect("static phase is valid");
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

fn mem_machine(seed: u64) -> Machine {
    // Memory-bound: low decode rate, low power, persistent headroom.
    let phase = PhaseDescriptor::builder("fleet-mem")
        .instructions(20_000_000_000)
        .core_cpi(1.1)
        .mem_fraction(0.5)
        .l1_mpi(0.04)
        .l2_mpi(0.005)
        .overlap(0.3)
        .build()
        .expect("static phase is valid");
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

fn burst_machine(seed: u64) -> Machine {
    // Finishes after a couple of simulated seconds; the finished node then
    // donates its whole cap (minus the floor) back to the tree.
    let phase = PhaseDescriptor::builder("fleet-burst")
        .instructions(2_000_000_000)
        .core_cpi(0.7)
        .build()
        .expect("static phase is valid");
    Machine::new(MachineConfig::pentium_m_755(seed), PhaseProgram::from_phase(phase))
}

/// The shared fleet shape: one homogeneous cohort (= rack) per class.
fn build_fleet() -> Result<Fleet> {
    let governed = CohortMode::Governed { cadence_ticks: NODE_CADENCE_TICKS };
    let mut fleet = Fleet::new(Seconds::from_millis(10.0));
    fleet.add_cohort((0..NODES_PER_CLASS).map(|i| cpu_machine(100 + i as u64)).collect(), governed)?;
    fleet.add_cohort((0..NODES_PER_CLASS).map(|i| mem_machine(200 + i as u64)).collect(), governed)?;
    fleet
        .add_cohort((0..NODES_PER_CLASS).map(|i| burst_machine(300 + i as u64)).collect(), governed)?;
    Ok(fleet)
}

/// The budget tree matching [`build_fleet`]'s node order: one rack per
/// cohort, rack ceilings loose enough (120 W) that a compute rack can
/// absorb most of the slack the other racks give back.
pub fn budget_racks() -> Vec<RackSpec> {
    let node = NodeSpec { floor_w: 6.0, ceiling_w: 24.5 };
    (0..3).map(|_| RackSpec { ceiling_w: 120.0, nodes: vec![node; NODES_PER_CLASS] }).collect()
}

/// What one arm of the experiment measures.
struct ArmStats {
    energy_j: f64,
    ginstr: f64,
    violation_fraction: f64,
    reallocations: u64,
}

fn run_arm(mut controller: FleetPmController) -> Result<ArmStats> {
    let mut fleet = build_fleet()?;
    fleet.run_des(HORIZON_TICKS, GOVERNOR_EVERY_TICKS, &mut controller)?;
    let mut energy_j = 0.0;
    let mut instructions = 0.0;
    for cohort in 0..fleet.cohort_count() {
        for lane in 0..fleet.lanes(cohort) {
            energy_j += fleet.energy(cohort, lane).joules();
            instructions +=
                fleet.counter_snapshot(cohort, lane).get(HardwareEvent::InstructionsRetired);
        }
    }
    Ok(ArmStats {
        energy_j,
        ginstr: instructions / 1e9,
        violation_fraction: controller.cap_violation_fraction(),
        reallocations: controller.cluster().map_or(0, ClusterGovernor::reallocations),
    })
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fleet",
        "24-node fleet: hierarchical budget tree vs uniform static caps",
    );

    type ArmBuilder = Box<dyn FnOnce() -> Result<FleetPmController> + Send>;
    let uniform_cap = DATACENTER_W / NODES as f64;
    let arms: Vec<(&str, ArmBuilder)> = vec![
        ("hierarchical", {
            let table = ctx.table().clone();
            let model = ctx.power_model().clone();
            Box::new(move || {
                let tree = BudgetTree::new(DATACENTER_W, &budget_racks())?;
                let governor = ClusterGovernor::with_reserve(tree, 0.5)?;
                FleetPmController::hierarchical(table, &model, governor)
            })
        }),
        ("uniform", {
            let table = ctx.table().clone();
            let model = ctx.power_model().clone();
            Box::new(move || FleetPmController::uniform(table, &model, vec![uniform_cap; NODES]))
        }),
        ("uncapped", {
            let table = ctx.table().clone();
            let model = ctx.power_model().clone();
            Box::new(move || FleetPmController::uniform(table, &model, vec![1_000.0; NODES]))
        }),
    ];

    let cells: Vec<_> = arms
        .into_iter()
        .map(|(label, build)| move || -> Result<(&'static str, ArmStats)> {
            Ok((label, run_arm(build()?)?))
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;

    let sim_seconds = HORIZON_TICKS as f64 * 0.010;
    let mut table = TextTable::new(vec![
        "arm",
        "energy_j",
        "ginstr",
        "agg_gips",
        "cap_violation_pct",
        "nj_per_instr",
        "reallocations",
    ]);
    for (label, stats) in &results {
        table.row(vec![
            (*label).into(),
            f3(stats.energy_j),
            f3(stats.ginstr),
            f3(stats.ginstr / sim_seconds),
            pct(stats.violation_fraction),
            f3(stats.energy_j / stats.ginstr),
            stats.reallocations.to_string(),
        ]);
    }
    out.table("arms", table);

    let by = |name: &str| {
        &results.iter().find(|(label, _)| *label == name).expect("arm exists").1
    };
    let (hier, unif, open) = (by("hierarchical"), by("uniform"), by("uncapped"));
    out.note(format!(
        "hierarchical retires {:.1}% more instructions than uniform at the \
         same {DATACENTER_W:.0} W datacenter budget ({:.1} vs {:.1} Ginstr; \
         uncapped ceiling {:.1}), by moving slack from memory-bound and \
         finished nodes to the compute rack",
        (hier.ginstr / unif.ginstr - 1.0) * 100.0,
        hier.ginstr,
        unif.ginstr,
        open.ginstr,
    ));
    out.note(format!(
        "cap adherence: hierarchical {} vs uniform {} violation windows; \
         {} cluster reallocations over {:.0} s",
        pct(hier.violation_fraction),
        pct(unif.violation_fraction),
        hier.reallocations,
        HORIZON_TICKS as f64 * 0.010,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn hierarchical_beats_uniform_at_equal_budget() {
        let out = run(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let get = |name: &str, col: usize| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[col].parse().unwrap()
        };
        // The headline: slack reallocation buys instructions at the same
        // datacenter budget, and the uncapped arm bounds both from above.
        assert!(get("hierarchical", 2) > get("uniform", 2) * 1.01, "≥1% throughput win");
        assert!(get("uncapped", 2) >= get("hierarchical", 2));
        // The hierarchy actually ran: one reallocation per governor tick.
        assert_eq!(
            get("hierarchical", 6) as u64,
            HORIZON_TICKS / GOVERNOR_EVERY_TICKS
        );
        assert_eq!(get("uniform", 6) as u64, 0);
    }
}
