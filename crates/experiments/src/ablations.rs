//! Ablation studies on the design choices the paper calls out.
//!
//! * **Guardband** (paper uses 0.5 W): violation rate and performance as
//!   the guardband varies — the safety/performance trade.
//! * **Raise window** (paper: lower immediately, raise after 10 agreeing
//!   samples): violations vs responsiveness on bursty galgel.
//! * **Measured-power feedback** (paper's future-work sketch): the
//!   [`aapm::feedback::FeedbackPm`] variant vs plain PM on galgel.
//! * **Demand-based switching**: the related-work baseline saves nothing at
//!   full load, motivating PS.

use aapm::governor::Governor;
use aapm::limits::PowerLimit;
use aapm::pm::{PerformanceMaximizer, PmConfig};
use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_platform::units::Watts;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
// The guardband and raise-window sweeps tune `PmConfig` fields the spec
// grammar deliberately does not expose, so they keep the closure-based
// `median_run`; everything spec-expressible goes through `median_run_spec`.
use crate::runner::{median_run, median_run_spec};
use crate::table::{f3, pct, TextTable};

/// The limit used by the galgel-focused ablations: the paper's worst case.
pub const GALGEL_LIMIT_W: f64 = 13.5;

/// Guardband sweep on galgel (the hardest workload) at 13.5 W.
///
/// # Errors
///
/// Propagates platform errors.
pub fn guardband(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-guardband",
        "PM guardband sweep on galgel at 13.5 W (paper uses 0.5 W)",
    );
    let galgel = spec::by_name("galgel").expect("galgel in suite");
    let limit = PowerLimit::new(GALGEL_LIMIT_W).expect("valid limit");
    let mut table = TextTable::new(vec!["guardband_w", "violations", "time_s"]);
    let guardbands = [0.0, 0.25, 0.5, 1.0, 2.0];
    let galgel_ref = &galgel;
    let cells: Vec<_> = guardbands
        .into_iter()
        .map(|guardband| {
            move || -> Result<(f64, f64)> {
                let config =
                    PmConfig { guardband: Watts::new(guardband), ..PmConfig::default() };
                let factory = || {
                    Box::new(PerformanceMaximizer::with_config(
                        ctx.power_model().clone(),
                        limit,
                        config,
                    )) as Box<dyn Governor>
                };
                let report =
                    median_run(pool, &factory, galgel_ref.program(), ctx.table(), &[])?;
                Ok((
                    report.violation_fraction(limit.watts(), 10),
                    report.execution_time.seconds(),
                ))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (guardband, (violations, time_s)) in guardbands.into_iter().zip(results) {
        table.row(vec![f3(guardband), pct(violations), f3(time_s)]);
    }
    out.table("sweep", table);
    out.note("larger guardbands trade performance for fewer limit excursions");
    Ok(out)
}

/// Raise-window sweep on galgel at 13.5 W.
///
/// # Errors
///
/// Propagates platform errors.
pub fn raise_window(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-window",
        "PM raise-window sweep on galgel at 13.5 W (paper waits 10 samples)",
    );
    let galgel = spec::by_name("galgel").expect("galgel in suite");
    let limit = PowerLimit::new(GALGEL_LIMIT_W).expect("valid limit");
    let mut table =
        TextTable::new(vec!["raise_samples", "violations", "time_s", "transitions"]);
    let windows = [1usize, 3, 10, 30];
    let galgel_ref = &galgel;
    let cells: Vec<_> = windows
        .into_iter()
        .map(|raise_samples| {
            move || -> Result<(f64, f64, u64)> {
                let config = PmConfig { raise_samples, ..PmConfig::default() };
                let factory = || {
                    Box::new(PerformanceMaximizer::with_config(
                        ctx.power_model().clone(),
                        limit,
                        config,
                    )) as Box<dyn Governor>
                };
                let report =
                    median_run(pool, &factory, galgel_ref.program(), ctx.table(), &[])?;
                Ok((
                    report.violation_fraction(limit.watts(), 10),
                    report.execution_time.seconds(),
                    report.transitions,
                ))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (raise_samples, (violations, time_s, transitions)) in windows.into_iter().zip(results) {
        table.row(vec![
            raise_samples.to_string(),
            pct(violations),
            f3(time_s),
            transitions.to_string(),
        ]);
    }
    out.table("sweep", table);
    out.note(
        "eager raising (1 sample) chases every quiet stretch into the next \
         burst; long windows sacrifice performance for calm",
    );
    Ok(out)
}

/// Measured-power feedback PM vs plain PM on galgel.
///
/// # Errors
///
/// Propagates platform errors.
pub fn feedback(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-feedback",
        "Plain PM vs measured-power-feedback PM on galgel (paper's future-work sketch)",
    );
    let galgel = spec::by_name("galgel").expect("galgel in suite");
    let mut table =
        TextTable::new(vec!["limit_w", "pm_violations", "feedback_violations", "pm_time_s", "feedback_time_s"]);
    let mut improved = 0usize;
    let mut compared = 0usize;
    let limits_w = [17.5, 15.5, 13.5, 11.5];
    let galgel_ref = &galgel;
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = limits_w
        .into_iter()
        .map(|watts| {
            move || -> Result<(f64, f64, f64, f64)> {
                let limit = PowerLimit::new(watts).expect("valid limit");
                let pm_spec = GovernorSpec::Pm { limit_w: watts };
                let pm = median_run_spec(
                    pool,
                    &pm_spec,
                    models_ref,
                    galgel_ref.program(),
                    ctx.table(),
                    &[],
                )?;
                let fb_spec = GovernorSpec::FeedbackPm { limit_w: watts };
                let fb = median_run_spec(
                    pool,
                    &fb_spec,
                    models_ref,
                    galgel_ref.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok((
                    pm.violation_fraction(limit.watts(), 10),
                    fb.violation_fraction(limit.watts(), 10),
                    pm.execution_time.seconds(),
                    fb.execution_time.seconds(),
                ))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (watts, (pm_violations, fb_violations, pm_time, fb_time)) in
        limits_w.into_iter().zip(results)
    {
        if pm_violations > 0.001 {
            compared += 1;
            if fb_violations <= pm_violations {
                improved += 1;
            }
        }
        table.row(vec![
            format!("{watts:.1}"),
            pct(pm_violations),
            pct(fb_violations),
            f3(pm_time),
            f3(fb_time),
        ]);
    }
    out.table("comparison", table);
    out.note(format!(
        "feedback matched or reduced violations in {improved}/{compared} \
         of the limits where plain PM violated"
    ));
    Ok(out)
}

/// Demand-based switching vs unconstrained on the saturated suite.
///
/// # Errors
///
/// Propagates platform errors.
pub fn dbs(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "ablation-dbs",
        "Demand-based switching saves nothing at full load (paper §IV.B motivation)",
    );
    let mut table = TextTable::new(vec!["benchmark", "dbs_energy_savings", "dbs_slowdown"]);
    let mut worst_saving = 0.0f64;
    let benches: Vec<_> = spec::suite().into_iter().take(8).collect();
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = benches
        .iter()
        .map(|bench| {
            move || -> Result<(f64, f64)> {
                let reference = median_run_spec(
                    pool,
                    &GovernorSpec::Unconstrained,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                // Matches `DemandBasedSwitching::new()`'s 0.8 default.
                let dbs_spec = GovernorSpec::Dbs { target_utilization: 0.8 };
                let dbs_run = median_run_spec(
                    pool,
                    &dbs_spec,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok((
                    dbs_run.energy_savings_vs(&reference),
                    dbs_run.execution_time / reference.execution_time,
                ))
            }
        })
        .collect();
    let results = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (bench, (savings, slowdown)) in benches.iter().zip(results) {
        worst_saving = worst_saving.max(savings.abs());
        table.row(vec![bench.name().into(), pct(savings), f3(slowdown)]);
    }
    out.table("comparison", table);
    out.note(format!(
        "at 100% load DBS tracks the unconstrained run (|savings| ≤ {}): \
         utilization-driven DVFS cannot trade performance for energy — PS's \
         explicit floor can",
        pct(worst_saving)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_ctx, test_pool};

    #[test]
    fn guardband_reduces_violations_monotonically_enough() {
        let out = guardband(test_ctx(), test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let violations: Vec<f64> = rows
            .iter()
            .map(|r| r[1].trim_end_matches('%').parse::<f64>().unwrap())
            .collect();
        // The largest guardband must not violate more than the smallest.
        assert!(violations.last().unwrap() <= violations.first().unwrap());
        // Times grow (weakly) with guardband.
        let times: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(*times.last().unwrap() >= times.first().unwrap() - 0.05);
    }

    #[test]
    fn dbs_saves_nothing_at_full_load() {
        let out = dbs(test_ctx(), test_pool()).unwrap();
        for line in out.tables[0].1.to_csv().lines().skip(1) {
            let savings: f64 = line
                .split(',')
                .nth(1)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(savings.abs() < 3.0, "DBS saved {savings}% — should be ≈0");
        }
    }
}
