//! Table IV — power-limit-determined static frequencies.
//!
//! Conventional static clocking must provision for the worst case: for each
//! power limit, the static frequency is the highest whose worst-case
//! (FMA-256K) power stays under the limit.

use aapm_platform::error::Result;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::{pm_power_limits, static_frequency_for_limit, worst_case_power_curve};
use crate::table::TextTable;

/// The paper's Table IV (limit watts → static MHz).
pub const PAPER_TABLE_IV: [(f64, u32); 8] = [
    (17.5, 1800),
    (16.5, 1800),
    (15.5, 1800),
    (14.5, 1600),
    (13.5, 1600),
    (12.5, 1600),
    (11.5, 1400),
    (10.5, 1400),
];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "tab4",
        "Power-limit determined static frequencies (paper Table IV)",
    );
    let curve = worst_case_power_curve(pool, ctx.table())?;
    let mut table = TextTable::new(vec!["limit_w", "static_mhz", "paper_mhz"]);
    let mut matches = 0usize;
    for (limit, (paper_limit, paper_mhz)) in pm_power_limits().iter().zip(PAPER_TABLE_IV) {
        assert!((limit.watts().watts() - paper_limit).abs() < 1e-9);
        let id = static_frequency_for_limit(&curve, ctx.table(), *limit);
        let mhz = ctx.table().get(id)?.frequency().mhz();
        if mhz == paper_mhz {
            matches += 1;
        }
        table.row(vec![
            format!("{:.1}", limit.watts().watts()),
            mhz.to_string(),
            paper_mhz.to_string(),
        ]);
    }
    out.table("static_frequencies", table);
    out.note(format!("{matches}/8 rows match the paper's Table IV exactly"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn static_frequencies_match_paper() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(rows.len(), 8);
        let matching =
            rows.iter().filter(|r| r[1] == r[2]).count();
        assert!(matching >= 7, "at least 7 of 8 rows should match, got {matching}");
        // Frequencies must be non-increasing as limits tighten.
        for pair in rows.windows(2) {
            let hi: u32 = pair[0][1].parse().unwrap();
            let lo: u32 = pair[1][1].parse().unwrap();
            assert!(lo <= hi);
        }
    }
}
