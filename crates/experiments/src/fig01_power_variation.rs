//! Figure 1 — power variation across the SPEC CPU2000 suite at 2 GHz.
//!
//! The paper's figure plots 10 ms power samples over time for the whole
//! suite at a fixed 2 GHz, showing a range spanning more than 35 % of the
//! chip's peak operating power. This experiment reruns the suite
//! unconstrained and reports, per benchmark, the mean / min / max measured
//! power and the suite-wide range, plus a downsampled sample trace suitable
//! for plotting.

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run_spec;
use crate::table::{f3, pct, TextTable};

/// Peak operating power used to normalize the range (the Pentium M 755's
/// TDP class).
const PEAK_OPERATING_POWER: f64 = 21.0;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates platform errors from the runs.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig1",
        "Power variation for SPEC CPU2000 at 2 GHz (paper Figure 1)",
    );
    let mut per_bench = TextTable::new(vec!["benchmark", "mean_w", "min_w", "max_w"]);
    let mut trace_table = TextTable::new(vec!["benchmark", "t_ms", "power_w"]);

    let mut suite_min = f64::INFINITY;
    let mut suite_max = f64::NEG_INFINITY;
    let benches = spec::suite();
    let models = ctx.spec_models();
    let models_ref = &models;
    let cells: Vec<_> = benches
        .iter()
        .map(|bench| {
            move || {
                median_run_spec(
                    pool,
                    &GovernorSpec::Unconstrained,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )
            }
        })
        .collect();
    let reports = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (bench, report) in benches.iter().zip(reports) {
        let powers: Vec<f64> =
            report.trace.records().iter().map(|r| r.power.watts()).collect();
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        suite_min = suite_min.min(mean);
        suite_max = suite_max.max(mean);
        per_bench.row(vec![bench.name().into(), f3(mean), f3(min), f3(max)]);
        // Downsample the trace (every 10th sample) for plotting.
        for (i, record) in report.trace.records().iter().enumerate() {
            if i % 10 == 0 {
                trace_table.row(vec![
                    bench.name().into(),
                    format!("{:.0}", record.time.millis()),
                    f3(record.power.watts()),
                ]);
            }
        }
    }

    let range = suite_max - suite_min;
    out.table("per_benchmark", per_bench);
    out.table("trace", trace_table);
    out.note(format!(
        "suite mean-power range at 2 GHz: {suite_min:.2}–{suite_max:.2} W \
         (range {range:.2} W = {} of {PEAK_OPERATING_POWER} W peak; paper: >35%)",
        pct(range / PEAK_OPERATING_POWER)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_exceeds_35_percent_of_peak() {
        let ctx = ExperimentContext::train().unwrap();
        let out = run(&ctx, &Pool::new(4)).unwrap();
        assert_eq!(out.tables[0].1.len(), 26);
        // The note carries the suite range; re-derive the check from the
        // per-benchmark table to avoid string parsing.
        let means: Vec<f64> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<f64>().unwrap())
            .collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.35 * PEAK_OPERATING_POWER, "range {}", max - min);
    }
}
