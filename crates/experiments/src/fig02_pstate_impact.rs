//! Figure 2 — workload-specific performance impact across three p-states.
//!
//! The paper shows relative performance at 1600/1800/2000 MHz for three
//! workloads spanning the spectrum: memory-bound `swim` (flat), in-between
//! `gap`, and core-bound `sixtrack` (linear in frequency).

use aapm::spec::GovernorSpec;
use aapm_platform::error::Result;
use aapm_platform::units::MegaHertz;
use aapm_workloads::spec;

use crate::context::ExperimentContext;
use crate::output::ExperimentOutput;
use crate::pool::Pool;
use crate::runner::median_run_spec;
use crate::table::{f3, TextTable};

/// The three workloads of the paper's figure.
pub const WORKLOADS: [&str; 3] = ["swim", "gap", "sixtrack"];

/// The three p-state frequencies of the paper's figure.
pub const FREQUENCIES_MHZ: [u32; 3] = [1600, 1800, 2000];

/// Runs the experiment: relative performance (time at 2 GHz / time at f)
/// for each workload × frequency.
///
/// # Errors
///
/// Propagates platform errors from the runs.
pub fn run(ctx: &ExperimentContext, pool: &Pool) -> Result<ExperimentOutput> {
    let mut out = ExperimentOutput::new(
        "fig2",
        "Performance impact across p-states for swim / gap / sixtrack (paper Figure 2)",
    );
    let mut table = TextTable::new(vec!["benchmark", "1600MHz", "1800MHz", "2000MHz"]);
    let mut swim_range = 0.0f64;
    let mut sixtrack_range = 0.0f64;
    // One cell per (workload, frequency), merged back in submission order.
    let models = ctx.spec_models();
    let models_ref = &models;
    let mut cells = Vec::new();
    for name in WORKLOADS {
        let bench = spec::by_name(name).expect("figure workloads are in the suite");
        for mhz in FREQUENCIES_MHZ {
            let bench = bench.clone();
            cells.push(move || {
                let id = ctx.table().id_of_frequency(MegaHertz::new(mhz))?;
                let static_clock = GovernorSpec::StaticClock { pstate: id.index() };
                let report = median_run_spec(
                    pool,
                    &static_clock,
                    models_ref,
                    bench.program(),
                    ctx.table(),
                    &[],
                )?;
                Ok(report.execution_time.seconds())
            });
        }
    }
    let all_times = pool.run(cells).into_iter().collect::<Result<Vec<_>>>()?;
    for (w, name) in WORKLOADS.into_iter().enumerate() {
        let times = &all_times[w * FREQUENCIES_MHZ.len()..(w + 1) * FREQUENCIES_MHZ.len()];
        let t2000 = times[2];
        let rel: Vec<f64> = times.iter().map(|t| t2000 / t).collect();
        table.row(vec![name.into(), f3(rel[0]), f3(rel[1]), f3(rel[2])]);
        if name == "swim" {
            swim_range = 1.0 - rel[0];
        }
        if name == "sixtrack" {
            sixtrack_range = 1.0 - rel[0];
        }
    }
    out.table("relative_performance", table);
    out.note(format!(
        "swim loses only {:.1}% from 2000→1600 MHz while sixtrack loses {:.1}% \
         (paper: swim minimal, sixtrack scales linearly — 20% would be the full ratio)",
        swim_range * 100.0,
        sixtrack_range * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_ctx;

    #[test]
    fn swim_flat_sixtrack_linear() {
        let out = run(test_ctx(), crate::test_support::test_pool()).unwrap();
        let rows: Vec<Vec<String>> = out.tables[0]
            .1
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let value = |bench: &str, col: usize| -> f64 {
            rows.iter().find(|r| r[0] == bench).unwrap()[col].parse().unwrap()
        };
        // swim at 1600 retains ≥ 95% of its 2 GHz performance.
        assert!(value("swim", 1) > 0.95, "swim 1600: {}", value("swim", 1));
        // sixtrack at 1600 retains ≈ 1600/2000 = 80%.
        assert!((value("sixtrack", 1) - 0.8).abs() < 0.02);
        // gap sits between them.
        assert!(value("gap", 1) > value("sixtrack", 1));
        assert!(value("gap", 1) < value("swim", 1));
    }
}
