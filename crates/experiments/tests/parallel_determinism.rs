//! Cross-width determinism: parallel execution must be invisible in the
//! output.
//!
//! The pool merges cell results in submission order, so a wide pool has to
//! render byte-for-byte the same tables, notes, and row order as
//! `--jobs 1`. These tests train one context and replay a representative
//! slice of the suite at both widths: a plain per-benchmark fan-out
//! (fig2), a pooled measurement curve reused by two tables (tab3/tab4),
//! and a nested `median_run` fan under an outer fan (fig5).

use aapm_experiments::{run_by_id, ExperimentContext, Pool};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::train().expect("training succeeds"))
}

fn rendered(pool: &Pool, id: &str) -> Vec<String> {
    run_by_id(ctx(), pool, id)
        .unwrap_or_else(|e| panic!("{id} failed: {e}"))
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let serial = Pool::new(1);
    let wide = Pool::new(8);
    for id in ["fig2", "tab3", "fig5"] {
        assert_eq!(
            rendered(&serial, id),
            rendered(&wide, id),
            "`{id}` must not depend on pool width"
        );
    }
}

#[test]
fn pool_accounts_for_the_cells_it_ran() {
    let pool = Pool::new(4);
    let outputs = run_by_id(ctx(), &pool, "fig2").expect("fig2 succeeds");
    assert_eq!(outputs.len(), 1);
    let stats = pool.stats();
    assert_eq!(stats.jobs, 4);
    // fig2 fans 3 workloads × 3 frequencies, each a nested 3-seed
    // median_run: 9 top-level cells plus 27 nested ones.
    assert_eq!(stats.cells_run, 36);
    assert_eq!(stats.cells_failed, 0);
    assert_eq!(stats.top_cells, 9);
    assert!(stats.top_busy >= stats.longest_top_cell);
}

#[test]
fn unknown_ids_error_at_any_width() {
    for pool in [Pool::new(1), Pool::new(8)] {
        let err = run_by_id(ctx(), &pool, "fig99").unwrap_err();
        assert!(err.to_string().contains("unknown experiment id"), "{err}");
    }
}
