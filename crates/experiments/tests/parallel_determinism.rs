//! Cross-width determinism: parallel execution must be invisible in the
//! output.
//!
//! The pool merges cell results in submission order, so a wide pool has to
//! render byte-for-byte the same tables, notes, and row order as
//! `--jobs 1`. These tests train one context and replay a representative
//! slice of the suite at both widths: a plain per-benchmark fan-out
//! (fig2), a pooled measurement curve reused by two tables (tab3/tab4),
//! and a nested `median_run` fan under an outer fan (fig5).

use aapm_experiments::{run_by_id, ExperimentContext, Pool, RunObserver};
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::train().expect("training succeeds"))
}

fn rendered(pool: &Pool, id: &str) -> Vec<String> {
    run_by_id(ctx(), pool, id)
        .unwrap_or_else(|e| panic!("{id} failed: {e}"))
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let serial = Pool::new(1);
    let wide = Pool::new(8);
    for id in ["fig2", "tab3", "fig5"] {
        assert_eq!(
            rendered(&serial, id),
            rendered(&wide, id),
            "`{id}` must not depend on pool width"
        );
    }
}

#[test]
fn pool_accounts_for_the_cells_it_ran() {
    let pool = Pool::new(4);
    let outputs = run_by_id(ctx(), &pool, "fig2").expect("fig2 succeeds");
    assert_eq!(outputs.len(), 1);
    let stats = pool.stats();
    assert_eq!(stats.jobs, 4);
    // fig2 fans 3 workloads × 3 frequencies, each a nested 3-seed
    // median_run: 9 top-level cells plus 27 nested ones.
    assert_eq!(stats.cells_run, 36);
    assert_eq!(stats.cells_failed, 0);
    assert_eq!(stats.top_cells, 9);
    assert!(stats.top_busy >= stats.longest_top_cell);
}

/// Acceptance: installing the metrics registry must not perturb any run,
/// and the observability artifacts themselves must be identical across
/// pool widths.
#[test]
fn observer_outputs_are_byte_identical_across_widths() {
    let temp = std::env::temp_dir().join(format!("aapm-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&temp);

    let run_observed_suite = |jobs: usize| {
        let trace_dir = temp.join(format!("traces-{jobs}"));
        let metrics_path = temp.join(format!("metrics-{jobs}.json"));
        let observer = Arc::new(RunObserver::new(Some(trace_dir.clone())));
        let pool = Pool::with_observer(jobs, Arc::clone(&observer));
        let output = rendered(&pool, "fig5");
        observer.finish(Some(&metrics_path)).expect("observer output is writable");
        assert!(observer.runs_observed() > 0, "fig5 must observe its runs");
        let mut traces: Vec<(String, String)> = std::fs::read_dir(&trace_dir)
            .expect("trace dir exists")
            .map(|e| {
                let e = e.unwrap();
                let name = e.file_name().into_string().unwrap();
                let body = std::fs::read_to_string(e.path()).unwrap();
                (name, body)
            })
            .collect();
        traces.sort();
        let metrics_json = std::fs::read_to_string(&metrics_path).unwrap();
        (output, traces, metrics_json)
    };

    let (out_serial, traces_serial, json_serial) = run_observed_suite(1);
    let (out_wide, traces_wide, json_wide) = run_observed_suite(8);

    // The run itself must be unchanged by the registry…
    assert_eq!(
        out_serial,
        rendered(&Pool::new(1), "fig5"),
        "metrics registry must not perturb the rendered output"
    );
    // …and every artifact must be width-independent.
    assert_eq!(out_serial, out_wide);
    assert_eq!(traces_serial, traces_wide, "trace files must not depend on pool width");
    assert_eq!(json_serial, json_wide, "aggregate must not depend on pool width");

    assert!(!traces_serial.is_empty());
    // A steady-state baseline can emit zero events, but at least one of
    // fig5's runs (PM stepping around the limit) must produce a stream,
    // and every present line must be well-formed.
    assert!(
        traces_serial.iter().any(|(_, body)| !body.is_empty()),
        "fig5's PM runs must carry events"
    );
    for (name, body) in &traces_serial {
        for line in body.lines() {
            assert!(
                line.starts_with("{\"t\":") && line.ends_with('}'),
                "{name}: malformed JSONL line {line}"
            );
        }
    }
    assert!(json_serial.contains("\"runtime.intervals\""));

    let _ = std::fs::remove_dir_all(&temp);
}

/// The serve experiment — open-loop arrivals, the SLO governor, and the
/// fleet spike stage — must render byte-identically at any pool width:
/// every arrival stream is owned by exactly one cell, so the fan-out
/// must not perturb a single draw.
#[test]
fn serve_output_is_byte_identical_across_widths() {
    assert_eq!(
        rendered(&Pool::new(1), "serve"),
        rendered(&Pool::new(2), "serve"),
        "`serve` must not depend on pool width"
    );
}

#[test]
fn unknown_ids_error_at_any_width() {
    for pool in [Pool::new(1), Pool::new(8)] {
        let err = run_by_id(ctx(), &pool, "fig99").unwrap_err();
        assert!(err.to_string().contains("unknown experiment id"), "{err}");
    }
}
