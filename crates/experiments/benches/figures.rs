//! `cargo bench -p aapm-experiments` — regenerates every table and figure.
//!
//! This is the reproduction's primary "benchmark harness" in the paper's
//! sense: it re-runs the full evaluation and prints the same rows/series
//! the paper reports, writing CSVs under `target/figures/`. (Criterion
//! micro-benchmarks of the library itself live in the `aapm-bench` crate.)

use std::path::Path;

use aapm_experiments::{run_by_id, ExperimentContext, Pool};

fn main() {
    // Under `cargo bench`, harness-less targets receive `--bench`; ignore
    // argument noise and allow an optional experiment id filter.
    let id = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "all".to_owned());

    eprintln!("[figures] training models…");
    let ctx = ExperimentContext::train().expect("training succeeds");
    let pool = Pool::default_parallel();
    eprintln!("[figures] regenerating `{id}` with {} job(s)…", pool.jobs());
    let outputs = run_by_id(&ctx, &pool, &id).expect("experiments succeed");
    let out_dir = Path::new("target").join("figures");
    for output in &outputs {
        println!("{output}");
        output.write_csvs(&out_dir).expect("CSV writing succeeds");
    }
    eprintln!(
        "[figures] {} experiment(s) regenerated; CSVs under {}",
        outputs.len(),
        out_dir.display()
    );
}
