//! Regenerates the committed adversarial regression corpus under `corpus/`.
//!
//! Each fixture pins one hand-picked adversarial scenario together with the
//! verdict line the property oracles produced when it was committed
//! (`aapm-experiments --replay-corpus` byte-compares fresh verdicts against
//! these). Re-run this example after an *intentional* behavior change, eyeball
//! the verdict diffs, and commit the updated fixtures — or use
//! `--replay-corpus --bless`, which rewrites only the drifted verdicts.
//!
//! ```text
//! cargo run --release --example regen_corpus
//! ```

use aapm::spec::GovernorSpec;
use aapm_fuzz::corpus::Fixture;
use aapm_fuzz::generate;
use aapm_fuzz::scenario::{
    CommandKind, CommandSpec, FaultSpec, OracleParams, ProgramSpec, Scenario, WindowSpec,
};
use aapm_telemetry::faults::FaultKind;

/// A scenario skeleton with the corpus-wide defaults filled in.
fn base(name: &str, governor: GovernorSpec, program: ProgramSpec) -> Scenario {
    Scenario {
        name: name.to_owned(),
        seed: 42,
        max_samples: 3000,
        governor,
        program,
        faults: FaultSpec::inert(),
        commands: Vec::new(),
        oracles: OracleParams::default(),
    }
}

/// A two-segment hot/cool program long enough to judge every property.
fn mixed_program() -> ProgramSpec {
    let mut hot = generate::burst_segment(1.1);
    hot.name = "hot".to_owned();
    hot.instructions = 900_000_000;
    let mut cool = generate::quiet_segment();
    cool.name = "cool".to_owned();
    cool.instructions = 900_000_000;
    ProgramSpec { name: "mixed".to_owned(), segments: vec![hot, cool] }
}

fn fixtures() -> Vec<(&'static str, Scenario)> {
    let mut out: Vec<(&'static str, Scenario)> = Vec::new();

    // 001 — the galgel-style deception: FP bursts whose true power overshoots
    // the paper model by watts, so PM at 13.5 W violates its own cap. The
    // recorded verdict is a deliberate cap=FAIL: it documents the model's
    // blind spot and pins the violation fraction against drift.
    out.push((
        "001-galgel-cap-violation.json",
        base(
            "galgel-cap-violation",
            GovernorSpec::Pm { limit_w: 13.5 },
            generate::galgel_like_program(),
        ),
    ));

    // 002 — the guardband edge: at burst activity 1.0 the model error is
    // smaller than the stock 0.5 W guardband, so stock PM holds the cap that
    // a zero-guardband build would break. Pins the guardband's protection.
    out.push((
        "002-zero-guardband-edge.json",
        base(
            "zero-guardband-edge",
            GovernorSpec::Pm { limit_w: 13.5 },
            ProgramSpec {
                name: "burst-only".to_owned(),
                segments: vec![generate::burst_segment(1.0)],
            },
        ),
    ));

    // 003 — PS floor adherence through a PMC outage window.
    let mut ps = base("ps-floor-pmc-outage", GovernorSpec::Ps { floor: 0.8 }, mixed_program());
    ps.faults.windows.push(WindowSpec { kind: FaultKind::PmcMissed, start: 0.2, end: 0.6 });
    out.push(("003-ps-floor-pmc-outage.json", ps));

    // 004 — watchdog liveness through a clean blackout: the safe p-state
    // must appear within loss_threshold + slack intervals of the outage.
    let mut dog = base(
        "watchdog-blackout-liveness",
        GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::Pm { limit_w: 30.0 }) },
        mixed_program(),
    );
    dog.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.3, end: 0.9 });
    out.push(("004-watchdog-blackout-liveness.json", dog));

    // 005 — the full wrapper stack over a combined governor, with a thermal
    // sensor outage (the thermal guard must fail safe without panicking).
    let mut stack = base(
        "thermal-guard-stack",
        GovernorSpec::ThermalGuard {
            inner: Box::new(GovernorSpec::Watchdog {
                inner: Box::new(GovernorSpec::CombinedPm { limit_w: 16.0 }),
            }),
        },
        mixed_program(),
    );
    stack
        .faults
        .windows
        .push(WindowSpec { kind: FaultKind::ThermalDropout, start: 0.1, end: 1.2 });
    out.push(("005-thermal-guard-stack.json", stack));

    // 006 — scheduled power-limit steps: the cap oracle must respect the
    // post-command grace window and then hold each new limit.
    let mut steps =
        base("command-limit-steps", GovernorSpec::Pm { limit_w: 20.0 }, mixed_program());
    steps.commands.push(CommandSpec { at: 0.5, set: CommandKind::PowerLimit, value: 14.0 });
    steps.commands.push(CommandSpec { at: 1.2, set: CommandKind::PowerLimit, value: 24.0 });
    out.push(("006-command-limit-steps.json", steps));

    // 007 — fault soup: every stochastic channel enabled at once under DBS,
    // plus overlapping outage windows. Pins the fault plumbing end to end
    // (conservation/finite must hold no matter what the channels do).
    let mut soup = base(
        "dbs-fault-soup",
        GovernorSpec::Dbs { target_utilization: 0.7 },
        mixed_program(),
    );
    soup.faults.config.power_dropout_rate = 0.08;
    soup.faults.config.power_stuck_rate = 0.04;
    soup.faults.config.thermal_dropout_rate = 0.05;
    soup.faults.config.pmc_missed_rate = 0.1;
    soup.faults.config.actuation_ignored_rate = 0.05;
    soup.faults.config.actuation_stall_rate = 0.05;
    soup.faults.windows.push(WindowSpec { kind: FaultKind::PowerDropout, start: 0.4, end: 0.8 });
    soup.faults
        .windows
        .push(WindowSpec { kind: FaultKind::ActuationIgnored, start: 0.6, end: 1.0 });
    out.push(("007-dbs-fault-soup.json", soup));

    // 008 — a blackout opening at t = 0 (the boundary the fault layer
    // handles specially) under a static clock.
    let mut t0 = base("static-clock-blackout-t0", GovernorSpec::StaticClock { pstate: 3 }, {
        let mut program = mixed_program();
        program.name = "t0".to_owned();
        program
    });
    t0.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.0, end: 0.5 });
    out.push(("008-static-clock-blackout-t0.json", t0));

    // 009 — a generator-drawn scenario that surfaced a floor finding during
    // the seed-1 fuzz sweep (power-save under heavy faults misses its
    // floor). Committed so the finding stays visible until it is resolved.
    // Pinned from the committed fixture rather than redrawn: the generator
    // strategy has grown new arms since this was found, so a fresh draw at
    // the original seed would silently produce a different scenario.
    let drawn = Fixture::from_json(include_str!("../corpus/009-drawn-floor-finding.json"))
        .expect("committed fixture 009 must parse")
        .scenario;
    out.push(("009-drawn-floor-finding.json", drawn));

    // 010 — watchdog over throttle-save with a floor command mid-run: the
    // floor oracle takes the minimum of spec and commanded floors.
    let mut ts = base(
        "throttle-save-floor-command",
        GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::ThrottleSave { floor: 0.9 }) },
        mixed_program(),
    );
    ts.commands.push(CommandSpec { at: 0.4, set: CommandKind::PerformanceFloor, value: 0.7 });
    out.push(("010-throttle-save-floor-command.json", ts));

    // 011 — the fuzz-found watchdog bug, shrunk: a watchdog over a governor
    // that monitors no PMC events saw only empty counter samples, which
    // `is_fresh` treated as proof of a live driver, so a pure power
    // blackout never engaged it (liveness FAIL(-1) before the fix). The
    // fixture records the post-fix PASS; regressing `is_blind` flips it.
    let mut blind = base(
        "watchdog-empty-counters-blackout",
        GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::Unconstrained) },
        mixed_program(),
    );
    blind.faults.windows.push(WindowSpec { kind: FaultKind::Blackout, start: 0.4, end: 1.0 });
    out.push(("011-watchdog-empty-counters-blackout.json", blind));

    // 012 — online model adaptation through a PMC outage: adaptive(pm) refits
    // the power model from live counters, then loses the PMC stream for a
    // full adaptation window. The layer must restore the seeded Table II
    // model (not keep extrapolating a half-learned fit), so the verdict pins
    // both the refit behavior before the outage and the fallback after it.
    let mut adapt = base(
        "adaptive-pm-pmc-outage",
        GovernorSpec::Adaptive {
            forgetting: 0.98,
            window: 30,
            counters: 1,
            inner: Box::new(GovernorSpec::Pm { limit_w: 13.5 }),
        },
        mixed_program(),
    );
    adapt.faults.windows.push(WindowSpec { kind: FaultKind::PmcMissed, start: 0.5, end: 1.1 });
    out.push(("012-adaptive-pm-pmc-outage.json", adapt));

    // 013 — watchdog over the SLO governor on a batch program through a PMC
    // outage: slo-save reads queue telemetry, not counters, so the outage
    // cannot blind it; on a batch run it sees no queue at all, holds for its
    // stale budget, and then fails toward the peak p-state (the latency-safe
    // direction). The verdict pins that batch-mode fail-safe path and the
    // oracle's refusal to treat the SLO floor as an IPC floor (floor=SKIP).
    let mut slo = base(
        "watchdog-slo-save-pmc-outage",
        GovernorSpec::Watchdog { inner: Box::new(GovernorSpec::SloSave { slo_ms: 80.0 }) },
        mixed_program(),
    );
    slo.faults.windows.push(WindowSpec { kind: FaultKind::PmcMissed, start: 0.3, end: 0.9 });
    out.push(("013-watchdog-slo-save-pmc-outage.json", slo));

    out
}

fn main() {
    let dir = std::path::Path::new("corpus");
    std::fs::create_dir_all(dir).expect("corpus directory must be writable");
    for (file, scenario) in fixtures() {
        let fixture = Fixture::record(scenario);
        std::fs::write(dir.join(file), fixture.to_json()).expect("fixture must be writable");
        println!("{file}: {}", fixture.verdict);
    }
}
