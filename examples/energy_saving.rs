//! Energy saving at full load — PowerSave across the workload spectrum.
//!
//! ```text
//! cargo run --release --example energy_saving
//! ```
//!
//! Demand-based switching saves nothing when the machine is busy; PowerSave
//! trades an explicit, bounded slice of performance instead. This example
//! runs a memory-bound (`swim`), an in-between (`gap`), and a core-bound
//! (`sixtrack`) workload under PS at several floors, showing how the same
//! floor costs different workloads very different energy.

use aapm::baselines::Unconstrained;
use aapm::limits::PerformanceFloor;
use aapm::ps::PowerSave;
use aapm::runtime::{Session, SimulationConfig};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_platform::config::MachineConfig;
use aapm_workloads::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = PerfModel::new(PerfModelParams::paper());
    let sim = SimulationConfig::default();

    println!("workload   floor  realized-perf  energy-saved");
    println!("----------------------------------------------");
    for name in ["swim", "gap", "sixtrack"] {
        let bench = spec::by_name(name).expect("example workloads are in the suite");
        let machine = MachineConfig::pentium_m_755(3);
        let mut unconstrained = Unconstrained::new();
        let (reference, _) = Session::builder(machine.clone(), bench.program().clone())
            .config(sim)
            .governor(&mut unconstrained)
            .run()?;
        for floor in [0.9, 0.8, 0.6, 0.4] {
            let mut ps = PowerSave::new(model, PerformanceFloor::new(floor)?);
            let (report, _) = Session::builder(machine.clone(), bench.program().clone())
                .config(sim)
                .governor(&mut ps)
                .run()?;
            println!(
                "{name:<10} {floor:>4.0}%  {:>12.1}%  {:>11.1}%",
                100.0 * (reference.execution_time / report.execution_time),
                100.0 * report.energy_savings_vs(&reference),
                floor = floor * 100.0,
            );
        }
    }
    println!();
    println!("memory-bound swim yields large savings at tiny cost; core-bound");
    println!("sixtrack pays the full frequency ratio for every joule saved.");
    Ok(())
}
