//! Model training walk-through: from address streams to Table II.
//!
//! ```text
//! cargo run --release --example model_training
//! ```
//!
//! Shows every stage of the paper's §III.A pipeline: characterize the
//! MS-Loops by cache simulation, sample them at all eight p-states, fit the
//! per-p-state linear DPC power model, and grid-search the eq.-3
//! performance-projection parameters.

use aapm_models::training::{
    collect_training_data, power_model_training_error, train_perf_model, train_power_model,
    TrainingConfig,
};
use aapm_platform::pstate::PStateTable;
use aapm_workloads::characterize::training_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: characterization (the analogue of running the loops on the
    // instrumented machine).
    println!("== stage 1: characterize the MS-Loops by cache simulation ==");
    for point in training_set()? {
        println!(
            "  {:<18} l1_mpi {:.4}  l2_mpi {:.4}  prefetch/inst {:.4}",
            point.name(),
            point.phase.l1_mpi(),
            point.phase.l2_mpi(),
            point.phase.prefetch_per_inst(),
        );
    }

    // Stage 2: sample every point at every p-state.
    println!("\n== stage 2: sample 12 points × 8 p-states (10 ms counters + power) ==");
    let table = PStateTable::pentium_m_755();
    let data = collect_training_data(&TrainingConfig::default(), &table)?;
    println!("  collected {} training points", data.points().len());

    // Stage 3: least-absolute-error linear fit per p-state.
    println!("\n== stage 3: fit Power = α·DPC + β per p-state ==");
    let power_model = train_power_model(&data)?;
    print!("{power_model}");
    println!("  per-p-state training MAE:");
    for (pstate, mae) in power_model_training_error(&data, &power_model) {
        println!("    {pstate}: {mae:.3} W");
    }

    // Stage 4: grid-search the eq.-3 classification threshold and exponent.
    println!("\n== stage 4: fit the IPC projection model (eq. 3) ==");
    let fit = train_perf_model(&data);
    println!(
        "  DCU/IPC threshold {:.2}, exponent {:.2}, mean relative error {:.3}",
        fit.params.dcu_threshold, fit.params.exponent, fit.mean_relative_error
    );
    println!("  (paper: threshold 1.21, exponent 0.81; alternate minimum 0.59)");
    Ok(())
}
