//! Thermal envelopes: power limits bound instantaneous draw; die
//! temperature integrates history. This example shows a hot workload
//! overheating a mobile package under a pure power limit, and the
//! `ThermalGuard` decorator holding a 72 °C envelope on top of PM.
//!
//! ```text
//! cargo run --release --example thermal_envelope
//! ```

use aapm::baselines::Unconstrained;
use aapm::governor::Governor;
use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::{Session, SimulationConfig};
use aapm::thermal_guard::{ThermalGuard, ThermalGuardConfig};
use aapm_models::power_model::PowerModel;
use aapm_platform::config::MachineConfig;
use aapm_platform::thermal::{Celsius, ThermalModel};
use aapm_workloads::spec;

/// Replays a run's power trace through the package RC model and reports
/// the peak die temperature.
fn peak_temperature(report: &aapm::report::RunReport) -> f64 {
    let mut model = ThermalModel::new(*MachineConfig::default().thermal());
    let mut peak = model.temperature().degrees();
    for record in report.trace.records() {
        model.advance(record.true_power, report.trace.interval());
        peak = peak.max(model.temperature().degrees());
    }
    peak
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let crafty = spec::by_name("crafty").expect("crafty is in the suite");
    // Long enough for the package (τ ≈ 4 s) to heat through.
    let program = crafty.program().scaled(4.0);
    let machine = MachineConfig::pentium_m_755(17);
    let sim = SimulationConfig::default();
    let cap = 72.0;

    println!("{:<26} {:>8} {:>10} {:>8}", "configuration", "time_s", "peak_die_C", "mean_W");
    println!("{}", "-".repeat(56));
    let run_one = |label: &str, governor: &mut dyn Governor| -> Result<(), Box<dyn std::error::Error>> {
        let (report, _) = Session::builder(machine.clone(), program.clone())
            .config(sim)
            .governor(governor)
            .run()?;
        println!(
            "{label:<26} {:>8.2} {:>10.1} {:>8.2}",
            report.execution_time.seconds(),
            peak_temperature(&report),
            report.mean_power().map_or(0.0, |w| w.watts()),
        );
        Ok(())
    };

    run_one("unconstrained", &mut Unconstrained::new())?;

    // A 17.5 W power limit alone does not save the package: crafty's
    // sustained draw still exceeds the thermal budget.
    let model = PowerModel::paper_table_ii();
    run_one(
        "pm @17.5 W",
        &mut PerformanceMaximizer::new(model.clone(), PowerLimit::new(17.5)?),
    )?;

    // ThermalGuard over PM: same power limit, plus a 72 °C die cap.
    let config = ThermalGuardConfig { cap: Celsius::new(cap), ..ThermalGuardConfig::default() };
    run_one(
        "thermal<pm> @17.5 W, 72 C",
        &mut ThermalGuard::with_config(
            PerformanceMaximizer::new(model, PowerLimit::new(17.5)?),
            config,
        ),
    )?;

    println!();
    println!("the guard trades a slice of performance for a die that never");
    println!("crosses the {cap:.0} °C envelope — the paper's \"partial cooling");
    println!("failure\" scenario handled by composition, not a new governor.");
    Ok(())
}
