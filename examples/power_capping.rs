//! Power capping under a shrinking power budget — the paper's motivating
//! scenario (iii): "continuing operation with maximal (but safe)
//! performance in the event of partial supply/cooling failures".
//!
//! ```text
//! cargo run --release --example power_capping
//! ```
//!
//! A long `crafty` run starts under a comfortable 17.5 W budget. At t = 2 s
//! a fan fails and the budget drops to 12.5 W; at t = 4 s a second failure
//! forces 9.5 W. PM receives each new limit instantly (the paper delivers
//! these as Unix signals) and resettles on the best safe p-state within one
//! control interval.

use aapm::governor::GovernorCommand;
use aapm::limits::PowerLimit;
use aapm::pm::PerformanceMaximizer;
use aapm::runtime::{ScheduledCommand, Session};
use aapm_models::training::{collect_training_data, train_power_model, TrainingConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::pstate::PStateTable;
use aapm_platform::units::Seconds;
use aapm_workloads::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = PStateTable::pentium_m_755();
    println!("training the power model…");
    let training = collect_training_data(&TrainingConfig::default(), &table)?;
    let power_model = train_power_model(&training)?;

    let crafty = spec::by_name("crafty").expect("crafty is in the suite");
    // Stretch the run so every budget era lasts a while.
    let program = crafty.program().scaled(1.6);

    let mut pm = PerformanceMaximizer::new(power_model, PowerLimit::new(17.5)?);
    let commands = [
        ScheduledCommand {
            at: Seconds::new(2.0),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(12.5)?),
        },
        ScheduledCommand {
            at: Seconds::new(4.0),
            command: GovernorCommand::SetPowerLimit(PowerLimit::new(9.5)?),
        },
    ];
    let (report, _) = Session::builder(MachineConfig::pentium_m_755(7), program)
        .governor(&mut pm)
        .commands(&commands)
        .run()?;

    println!("crafty under a failing power supply:");
    println!("  completed: {} in {:.2} s", report.completed, report.execution_time.seconds());
    println!("  p-state transitions: {}", report.transitions);

    // Summarize each budget era from the trace.
    let eras = [(0.0, 2.0, 17.5), (2.0, 4.0, 12.5), (4.0, f64::INFINITY, 9.5)];
    for (start, end, budget) in eras {
        let records: Vec<_> = report
            .trace
            .records()
            .iter()
            .filter(|r| r.time.seconds() > start && r.time.seconds() <= end)
            .collect();
        if records.is_empty() {
            continue;
        }
        let mean_power =
            records.iter().map(|r| r.power.watts()).sum::<f64>() / records.len() as f64;
        let mean_freq = records
            .iter()
            .map(|r| {
                f64::from(
                    aapm_platform::pstate::PStateTable::pentium_m_755()
                        .get(r.pstate)
                        .map(|s| s.frequency().mhz())
                        .unwrap_or(0),
                )
            })
            .sum::<f64>()
            / records.len() as f64;
        println!(
            "  budget {budget:>5.1} W: mean power {mean_power:>5.2} W, mean frequency {mean_freq:>6.0} MHz"
        );
    }
    Ok(())
}
