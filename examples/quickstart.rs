//! Quickstart: run both of the paper's governors on one workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Trains the counter-based models on the MS-Loops microbenchmarks, then
//! runs `ammp` three ways: unconstrained, under PerformanceMaximizer with a
//! 14.5 W power limit, and under PowerSave with an 80 % performance floor.

use aapm::baselines::Unconstrained;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm::runtime::{Session, SimulationConfig};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::training::{collect_training_data, train_power_model, TrainingConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::pstate::PStateTable;
use aapm_workloads::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the power model exactly as the paper does: run the four
    //    MS-Loops at three footprints across all eight p-states and fit
    //    Power = α·DPC + β per p-state.
    println!("training the DPC power model on the MS-Loops microbenchmarks…");
    let table = PStateTable::pentium_m_755();
    let training = collect_training_data(&TrainingConfig::default(), &table)?;
    let power_model = train_power_model(&training)?;
    println!("{power_model}");

    // 2. Pick a workload with visible phase behaviour.
    let ammp = spec::by_name("ammp").expect("ammp is in the synthetic suite");
    let machine = MachineConfig::pentium_m_755(42);
    let sim = SimulationConfig::default();

    // 3. Reference: unconstrained 2 GHz.
    let mut unconstrained = Unconstrained::new();
    let (reference, _) = Session::builder(machine.clone(), ammp.program().clone())
        .config(sim)
        .governor(&mut unconstrained)
        .run()?;
    println!(
        "unconstrained: {:.2} s, {:.1} J, mean {:.2} W",
        reference.execution_time.seconds(),
        reference.measured_energy.joules(),
        reference.mean_power().map_or(0.0, |w| w.watts()),
    );

    // 4. PerformanceMaximizer under a 14.5 W limit.
    let mut pm = PerformanceMaximizer::new(power_model, PowerLimit::new(14.5)?);
    let (pm_run, _) = Session::builder(machine.clone(), ammp.program().clone())
        .config(sim)
        .governor(&mut pm)
        .run()?;
    println!(
        "pm @14.5 W:    {:.2} s ({:.1}% of peak perf), max 100 ms window {:.2} W",
        pm_run.execution_time.seconds(),
        100.0 * (reference.execution_time / pm_run.execution_time),
        pm_run.trace.moving_average_power(10).into_iter().fold(0.0f64, f64::max),
    );

    // 5. PowerSave with an 80 % performance floor.
    let mut ps = PowerSave::new(
        PerfModel::new(PerfModelParams::paper()),
        PerformanceFloor::new(0.8)?,
    );
    let (ps_run, _) = Session::builder(machine, ammp.program().clone())
        .config(sim)
        .governor(&mut ps)
        .run()?;
    println!(
        "ps @80% floor: {:.2} s ({:.1}% of peak perf), energy saved {:.1}%",
        ps_run.execution_time.seconds(),
        100.0 * (reference.execution_time / ps_run.execution_time),
        100.0 * ps_run.energy_savings_vs(&reference),
    );
    Ok(())
}
