//! Governor bake-off: PM, PS, DBS, static, and unconstrained on one
//! workload mix.
//!
//! ```text
//! cargo run --release --example governor_comparison
//! ```
//!
//! Runs a small representative mix (memory-bound, phased, hot) under five
//! governors and prints the time/energy/peak-power trade each one makes.

use aapm::baselines::{DemandBasedSwitching, StaticClock, Unconstrained};
use aapm::governor::Governor;
use aapm::limits::{PerformanceFloor, PowerLimit};
use aapm::pm::PerformanceMaximizer;
use aapm::ps::PowerSave;
use aapm::runtime::{Session, SimulationConfig};
use aapm_models::perf_model::{PerfModel, PerfModelParams};
use aapm_models::training::{collect_training_data, train_power_model, TrainingConfig};
use aapm_platform::config::MachineConfig;
use aapm_platform::pstate::{PStateId, PStateTable};
use aapm_workloads::spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = PStateTable::pentium_m_755();
    eprintln!("training the power model…");
    let training = collect_training_data(&TrainingConfig::default(), &table)?;
    let power_model = train_power_model(&training)?;
    let perf_model = PerfModel::new(PerfModelParams::paper());

    let mix = ["swim", "ammp", "crafty"];
    println!("{:<16} {:>10} {:>10} {:>12} {:>12}", "governor", "time_s", "energy_j", "mean_w", "max100ms_w");
    println!("{}", "-".repeat(64));

    type Factory = Box<dyn FnMut() -> Box<dyn Governor>>;
    let mut governors: Vec<(&str, Factory)> = vec![
        ("unconstrained", Box::new(|| Box::new(Unconstrained::new()) as Box<dyn Governor>)),
        ("static-1400", Box::new(|| Box::new(StaticClock::new(PStateId::new(4))) as Box<dyn Governor>)),
        ("dbs", Box::new(|| Box::new(DemandBasedSwitching::new()) as Box<dyn Governor>)),
        ("pm-12.5W", {
            let model = power_model.clone();
            Box::new(move || {
                Box::new(PerformanceMaximizer::new(
                    model.clone(),
                    PowerLimit::new(12.5).expect("valid limit"),
                )) as Box<dyn Governor>
            })
        }),
        ("ps-80%", {
            Box::new(move || {
                Box::new(PowerSave::new(
                    perf_model,
                    PerformanceFloor::new(0.8).expect("valid floor"),
                )) as Box<dyn Governor>
            })
        }),
    ];

    for (name, factory) in &mut governors {
        let mut time = 0.0;
        let mut energy = 0.0;
        let mut max_window = 0.0f64;
        let mut power_time = 0.0;
        for bench_name in mix {
            let bench = spec::by_name(bench_name).expect("mix is in the suite");
            let mut governor = factory();
            let (report, _) =
                Session::builder(MachineConfig::pentium_m_755(11), bench.program().clone())
                    .config(SimulationConfig::default())
                    .governor(governor.as_mut())
                    .run()?;
            time += report.execution_time.seconds();
            energy += report.measured_energy.joules();
            power_time += report.trace.len() as f64 * 0.01;
            max_window = max_window
                .max(report.trace.moving_average_power(10).into_iter().fold(0.0f64, f64::max));
        }
        println!(
            "{name:<16} {time:>10.2} {energy:>10.1} {:>12.2} {max_window:>12.2}",
            energy / power_time,
        );
    }
    println!();
    println!("DBS matches unconstrained at full load; PM caps the 100 ms peak;");
    println!("PS converts bounded slowdown into energy savings; static-1400 is");
    println!("the worst of both worlds unless the budget truly demands it.");
    Ok(())
}
